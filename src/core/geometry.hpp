// The Geometry abstraction at the heart of the Reachable Component Method.
//
// RCM (paper Section 4.1) reduces the routability analysis of a DHT routing
// system to two ingredients:
//
//   n(h)  -- the routing-distance distribution: how many of the N-1 other
//            nodes sit h hops/phases away from a root node in a fully
//            populated d-bit identifier space;
//   Q(m)  -- the probability that the route fails while crossing phase m,
//            read off the geometry's routing Markov chain.
//
// Everything else is generic: p(h, q) = prod_{m=1..h} (1 - Q(m)) (Eq. 5),
// E[S] = sum_h n(h) p(h, q), and r = E[S] / ((1-q) 2^d - 1) (Eq. 3), all
// implemented once over this interface (see routability.hpp).
#pragma once

#include <memory>
#include <string_view>

#include "math/logreal.hpp"

namespace dht::core {

/// The five routing geometries analyzed in the paper (Section 3).
enum class GeometryKind {
  kTree,       // Plaxton / Tapestry-style prefix routing, no fallback
  kHypercube,  // CAN: correct differing bits in any order
  kXor,        // Kademlia: prefix routing with fallback to lower-order bits
  kRing,       // Chord: greedy clockwise finger routing
  kSymphony,   // small-world ring: near neighbors + harmonic shortcuts
};

const char* to_string(GeometryKind kind) noexcept;

/// Scalability verdict per Definition 2 of the paper.
enum class ScalabilityClass {
  kScalable,    // lim_{N->inf} r(N, q) > 0 for all 0 < q < 1 - pc
  kUnscalable,  // lim_{N->inf} r(N, q) = 0
};

const char* to_string(ScalabilityClass c) noexcept;

/// How the analytical p(h, q) relates to the behavior of the basic routing
/// protocol it models.
enum class Exactness {
  /// p(h, q) is exact for the basic protocol (tree, hypercube, XOR).
  kExact,
  /// p(h, q) is a lower bound: suboptimal hops make real progress that the
  /// Markov chain ignores (ring/Chord, paper Section 4.3.3).
  kLowerBound,
  /// The chain itself involves modeling approximations (Symphony's capped
  /// suboptimal-hop count and constant phase-advance probability).
  kApproximate,
};

const char* to_string(Exactness e) noexcept;

/// Configuration for the Symphony geometry: the number of near (sequential)
/// neighbors and the number of long-range shortcuts per node.  The paper's
/// Fig. 7 uses kn = ks = 1.
struct SymphonyParams {
  int near_neighbors = 1;
  int shortcuts = 1;
};

/// A DHT routing geometry as seen by the Reachable Component Method.
///
/// Implementations are immutable and cheap to copy around behind a
/// unique_ptr; all methods are const and thread-safe.
class Geometry {
 public:
  virtual ~Geometry();

  virtual GeometryKind kind() const noexcept = 0;

  /// Short lowercase identifier: "tree", "hypercube", "xor", "ring",
  /// "symphony".  Stable; used by the registry and the report tables.
  virtual std::string_view name() const noexcept = 0;

  /// The deployed system the paper associates with the geometry.
  virtual std::string_view dht_system() const noexcept = 0;

  /// n(h): the number of nodes at routing distance h from a root node in a
  /// fully populated d-digit space.  Domain: 1 <= h <= d; values outside
  /// the domain return zero.  Returned in log space because C(100, 50) and
  /// 2^(h-1) for h ~ 100 are routine inputs (paper Fig. 7).
  virtual math::LogReal distance_count(int h, int d) const = 0;

  /// N: the number of identifiers in a fully populated d-digit space.
  /// 2^d for the binary geometries (the paper's setting); the base-b tree
  /// generalization (paper Section 3: "any other base besides 2 can be
  /// used") overrides this with b^d.  Always satisfies
  /// sum_h distance_count(h, d) = space_size(d) - 1.
  virtual math::LogReal space_size(int d) const;

  /// Q(m): probability of failing at the m-th phase of the routing process
  /// (paper Section 4.3).  `d` is the identifier length; only Symphony's
  /// Q depends on it.  Preconditions: m >= 1, 0 <= q <= 1, d >= 1.
  virtual double phase_failure(int m, double q, int d) const = 0;

  /// p(h, q) = prod_{m=1..h} (1 - Q(m)) (Eq. 5).  The default accumulates
  /// log1p(-Q(m)); overriding is only an optimization.
  virtual double success_probability(int h, double q, int d) const;

  /// log p(h, q); usable when p underflows (unscalable geometries at large
  /// h).  Returns -infinity when some Q(m) >= 1.
  virtual double log_success_probability(int h, double q, int d) const;

  /// The paper's analytic scalability verdict for this geometry (Section 5).
  virtual ScalabilityClass scalability_class() const noexcept = 0;

  /// One-sentence justification of the verdict via Knopp's theorem.
  virtual std::string_view scalability_argument() const noexcept = 0;

  /// Whether p(h, q) is exact, a bound, or an approximation for the basic
  /// protocol.
  virtual Exactness exactness() const noexcept = 0;
};

}  // namespace dht::core
