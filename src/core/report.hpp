// Plain-text tables and CSV output for the benchmark harnesses.
//
// Every figure/table reproduction prints two artifacts: an aligned
// human-readable table (what lands in EXPERIMENTS.md) and optionally a CSV
// block for replotting.  This keeps the bench binaries free of formatting
// noise.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dht::core {

/// A simple column-aligned text table with a title and optional footnotes.
class Table {
 public:
  explicit Table(std::string title);

  /// Sets the header row; must be called before add_row.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; its arity must match the header.
  void add_row(std::vector<std::string> row);

  /// Appends a footnote line printed under the table.
  void add_note(std::string note);

  /// Renders with aligned columns.
  void print(std::ostream& os) const;

  /// Renders as CSV (header + rows; title/notes become '#' comments).
  void print_csv(std::ostream& os) const;

  int row_count() const noexcept { return static_cast<int>(rows_.size()); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> notes_;
};

}  // namespace dht::core
