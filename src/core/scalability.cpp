#include "core/scalability.hpp"

#include <cmath>

#include "common/check.hpp"
#include "math/summation.hpp"

namespace dht::core {

double limit_success_probability(const Geometry& geometry, double q,
                                 const LimitOptions& options) {
  DHT_CHECK(q >= 0.0 && q < 1.0,
            "limit success probability requires q in [0, 1)");
  DHT_CHECK(options.d_reference >= 1, "d_reference must be >= 1");
  DHT_CHECK(options.max_factors > 0, "max_factors must be positive");
  if (q == 0.0) {
    return 1.0;
  }
  math::NeumaierSum log_product;
  for (int m = 1; m <= options.max_factors; ++m) {
    const double failure = geometry.phase_failure(m, q, options.d_reference);
    if (failure >= 1.0) {
      return 0.0;
    }
    log_product.add(std::log1p(-failure));
    if (failure < options.tail_epsilon) {
      // Remaining factors change log p by less than ~sum_{k>m} Q(k); for
      // every geometry in the library Q decays at least geometrically once
      // below tail_epsilon, so the tail is below tail_epsilon/(1-q).
      break;
    }
    if (log_product.total() < -745.0) {
      return 0.0;  // product already underflows double range
    }
  }
  return std::exp(log_product.total());
}

double limit_routability(const Geometry& geometry, double q,
                         const LimitOptions& options) {
  DHT_CHECK(q >= 0.0 && q < 1.0, "limit routability requires q in [0, 1)");
  return limit_success_probability(geometry, q, options) / (1.0 - q);
}

ScalabilityReport analyze_scalability(const Geometry& geometry, double q,
                                      const LimitOptions& options) {
  DHT_CHECK(q > 0.0 && q < 1.0, "analyze_scalability requires q in (0, 1)");
  ScalabilityReport report;
  report.kind = geometry.kind();
  report.q = q;
  report.analytic = geometry.scalability_class();
  report.numeric = math::diagnose_series(
      [&geometry, q, &options](int m) {
        return geometry.phase_failure(m, q, options.d_reference);
      });
  const bool numeric_convergent =
      report.numeric.verdict == math::SeriesVerdict::kConvergent;
  const bool analytic_scalable =
      report.analytic == ScalabilityClass::kScalable;
  report.numeric_agrees =
      (report.numeric.verdict != math::SeriesVerdict::kInconclusive) &&
      (numeric_convergent == analytic_scalable);
  report.limit_success = limit_success_probability(geometry, q, options);
  report.limit_routability = limit_routability(geometry, q, options);
  return report;
}

}  // namespace dht::core
