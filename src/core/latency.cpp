#include "core/latency.hpp"

#include "common/check.hpp"
#include "markov/absorption.hpp"
#include "markov/builders.hpp"
#include "math/logreal.hpp"

namespace dht::core {

namespace {

markov::RoutingChain build_chain(const Geometry& geometry, int h, int d,
                                 double q, const SymphonyParams& params) {
  switch (geometry.kind()) {
    case GeometryKind::kTree:
      return markov::build_tree_chain(h, q);
    case GeometryKind::kHypercube:
      return markov::build_hypercube_chain(h, q);
    case GeometryKind::kXor:
      return markov::build_xor_chain(h, q);
    case GeometryKind::kRing:
      return markov::build_ring_chain(h, q);
    case GeometryKind::kSymphony:
      return markov::build_symphony_chain(h, d, q, params.near_neighbors,
                                          params.shortcuts);
  }
  DHT_CHECK(false, "unknown geometry kind");
  return markov::build_tree_chain(1, 0.0);  // unreachable
}

bool chain_is_exponential(GeometryKind kind) {
  return kind == GeometryKind::kRing || kind == GeometryKind::kSymphony;
}

}  // namespace

DistanceLatency latency_at_distance(const Geometry& geometry, int h, int d,
                                    double q, SymphonyParams params) {
  DHT_CHECK(h >= 1 && h <= d, "latency requires 1 <= h <= d");
  DHT_CHECK(q >= 0.0 && q < 1.0, "latency requires q in [0, 1)");
  DHT_CHECK(!chain_is_exponential(geometry.kind()) || h <= 20,
            "ring/symphony chains grow as 2^h; h capped at 20");
  const markov::RoutingChain built = build_chain(geometry, h, d, q, params);
  const markov::ConditionalAbsorption absorption =
      markov::conditional_absorption_dag(built.chain, built.start,
                                         built.success);
  DistanceLatency out;
  out.success_probability = absorption.probability;
  out.expected_hops = absorption.expected_steps;
  return out;
}

LatencyPoint expected_latency(const Geometry& geometry, int d, double q,
                              SymphonyParams params) {
  DHT_CHECK(d >= 1, "identifier length d must be >= 1");
  DHT_CHECK(!chain_is_exponential(geometry.kind()) || d <= 20,
            "ring/symphony latency needs d <= 20 (chain size 2^d)");
  using math::LogReal;
  // Weighted means over h: weights n(h) p(h, q) can span hundreds of
  // orders of magnitude, so accumulate in log space and divide at the end.
  math::LogSum successful_mass;  // sum n(h) p(h)
  math::LogSum hop_mass;         // sum n(h) p(h) E[hops | h]
  math::LogSum total_mass;       // sum n(h)
  for (int h = 1; h <= d; ++h) {
    const LogReal n_h = geometry.distance_count(h, d);
    total_mass.add(n_h);
    const DistanceLatency at_h = latency_at_distance(geometry, h, d, q,
                                                     params);
    if (at_h.success_probability <= 0.0) {
      continue;
    }
    const LogReal mass =
        n_h * LogReal::from_value(at_h.success_probability);
    successful_mass.add(mass);
    hop_mass.add(mass * LogReal::from_value(at_h.expected_hops));
  }
  LatencyPoint out;
  out.d = d;
  out.q = q;
  if (!successful_mass.total().is_zero()) {
    out.mean_hops_given_success =
        (hop_mass.total() / successful_mass.total()).value();
    out.success_fraction =
        (successful_mass.total() / total_mass.total()).value();
  }
  return out;
}

}  // namespace dht::core
