// The generic RCM routability evaluator (paper Section 4.1, Eqs. 1, 3, 5).
//
// Given a Geometry's n(h) and Q(m), computes
//
//   E[S]      = sum_{h=1}^{d} n(h) p(h, q)          (expected reachable size)
//   r(N, q)   = E[S] / ((1-q) 2^d - 1)              (routability, Eq. 3)
//
// entirely in log space, so d = 100 (Fig. 7(a)) or d = 4096 evaluate without
// overflow.  Also exposes the conditional success fraction
// E[S] / ((1-q)(2^d - 1)), which is what a static-resilience simulator that
// samples alive source/destination pairs actually measures; it differs from
// r by O(q / N).
#pragma once

#include <span>
#include <vector>

#include "core/geometry.hpp"

namespace dht::core {

/// One evaluated (d, q) point.
struct RoutabilityPoint {
  int d = 0;          ///< identifier length; N = 2^d
  double q = 0.0;     ///< node failure probability
  double routability = 0.0;        ///< r(N, q), Eq. 3, clamped to [0, 1]
  double failed_fraction = 0.0;    ///< 1 - routability ("percent failed paths")
  double conditional_success = 0.0;  ///< E[S] / ((1-q)(N-1)); simulator view
  double log_expected_reachable = 0.0;  ///< log E[S]
};

/// Evaluates Eq. 3 for one (d, q).  Preconditions: d >= 1, q in [0, 1).
/// When fewer than one node is expected to survive ((1-q) 2^d <= 1) the
/// routability is defined as 0 -- there are no pairs to route between.
RoutabilityPoint evaluate_routability(const Geometry& geometry, int d,
                                      double q);

/// Sweeps failure probabilities at fixed d (the Fig. 6 / Fig. 7(a) axis).
std::vector<RoutabilityPoint> sweep_failure_probability(
    const Geometry& geometry, int d, std::span<const double> qs);

/// Sweeps identifier lengths at fixed q (the Fig. 7(b) axis).
std::vector<RoutabilityPoint> sweep_system_size(const Geometry& geometry,
                                                std::span<const int> ds,
                                                double q);

}  // namespace dht::core
