#include "core/geometry.hpp"

#include <cmath>

#include "common/check.hpp"
#include "math/summation.hpp"

namespace dht::core {

Geometry::~Geometry() = default;

math::LogReal Geometry::space_size(int d) const {
  DHT_CHECK(d >= 1, "identifier length d must be >= 1");
  return math::LogReal::exp2_int(d);
}

const char* to_string(GeometryKind kind) noexcept {
  switch (kind) {
    case GeometryKind::kTree:
      return "tree";
    case GeometryKind::kHypercube:
      return "hypercube";
    case GeometryKind::kXor:
      return "xor";
    case GeometryKind::kRing:
      return "ring";
    case GeometryKind::kSymphony:
      return "symphony";
  }
  return "unknown";
}

const char* to_string(ScalabilityClass c) noexcept {
  switch (c) {
    case ScalabilityClass::kScalable:
      return "scalable";
    case ScalabilityClass::kUnscalable:
      return "unscalable";
  }
  return "unknown";
}

const char* to_string(Exactness e) noexcept {
  switch (e) {
    case Exactness::kExact:
      return "exact";
    case Exactness::kLowerBound:
      return "lower bound";
    case Exactness::kApproximate:
      return "approximate";
  }
  return "unknown";
}

double Geometry::log_success_probability(int h, double q, int d) const {
  DHT_CHECK(h >= 1 && h <= d, "success probability requires 1 <= h <= d");
  DHT_CHECK(q >= 0.0 && q <= 1.0, "failure probability q must be in [0, 1]");
  math::NeumaierSum log_product;
  for (int m = 1; m <= h; ++m) {
    const double failure = phase_failure(m, q, d);
    if (failure >= 1.0) {
      return -std::numeric_limits<double>::infinity();
    }
    log_product.add(std::log1p(-failure));
  }
  return log_product.total();
}

double Geometry::success_probability(int h, double q, int d) const {
  return std::exp(log_success_probability(h, q, d));
}

}  // namespace dht::core
