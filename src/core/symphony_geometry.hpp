// Small-world (Symphony) routing geometry -- paper Sections 3.5, 4.3.4.
//
// Nodes sit on a ring with kn near neighbors and ks long-range shortcuts
// drawn from a harmonic (1/distance) distribution; routing is greedy.  Per
// hop, a phase (distance halving) completes with probability x = ks/d, the
// route dies when all kn + ks links are dead (probability y = q^{kn+ks}),
// and otherwise a suboptimal hop is taken, at most ceil(d/(1-q)) times
// (Fig. 8(b)).  This yields the phase-independent failure probability
// (Eq. 7)
//
//   Q = y * sum_{j=0}^{ceil(d/(1-q))} (1 - ks/d - y)^j.
//
// Q is constant in m, so sum_m Q(m) diverges for every q > 0: the basic
// Symphony routing system is unscalable (Section 5.5).  As the paper
// stresses, a deployment can still provision larger kn/ks for any target
// network size -- see the symphony_provisioning example and ablation.
#pragma once

#include "core/geometry.hpp"

namespace dht::core {

class SymphonyGeometry final : public Geometry {
 public:
  /// Constructs with the given link counts (paper's Fig. 7 uses kn=ks=1).
  /// Preconditions: near_neighbors >= 1, shortcuts >= 1.
  explicit SymphonyGeometry(SymphonyParams params = {});

  GeometryKind kind() const noexcept override {
    return GeometryKind::kSymphony;
  }
  std::string_view name() const noexcept override { return "symphony"; }
  std::string_view dht_system() const noexcept override { return "Symphony"; }

  /// n(h) = 2^{h-1}, as for the ring geometry (phases halve ring distance).
  math::LogReal distance_count(int h, int d) const override;

  /// Eq. 7 (exact truncated geometric sum; the suboptimal-hop probability
  /// 1 - ks/d - q^{kn+ks} is clamped at 0 when the model leaves its domain,
  /// which happens only for tiny d combined with large q).
  double phase_failure(int m, double q, int d) const override;

  SymphonyParams params() const noexcept { return params_; }

  ScalabilityClass scalability_class() const noexcept override {
    return ScalabilityClass::kUnscalable;
  }
  std::string_view scalability_argument() const noexcept override {
    return "Q(m) is constant in m, so sum Q(m) diverges and p(h, q) -> 0 "
           "as h -> infinity (Knopp)";
  }
  Exactness exactness() const noexcept override {
    return Exactness::kApproximate;
  }

 private:
  SymphonyParams params_;
};

}  // namespace dht::core
