#include "core/hypercube_geometry.hpp"

#include "common/check.hpp"
#include "math/binomial.hpp"
#include "math/stable.hpp"

namespace dht::core {

math::LogReal HypercubeGeometry::distance_count(int h, int d) const {
  DHT_CHECK(d >= 1, "identifier length d must be >= 1");
  if (h < 1 || h > d) {
    return math::LogReal::zero();
  }
  return math::binomial(d, h);
}

double HypercubeGeometry::phase_failure(int m, double q, int d) const {
  DHT_CHECK(m >= 1, "phase index m must be >= 1");
  DHT_CHECK(d >= 1, "identifier length d must be >= 1");
  DHT_CHECK(q >= 0.0 && q <= 1.0, "failure probability q must be in [0, 1]");
  return math::pow_q(q, static_cast<double>(m));
}

}  // namespace dht::core
