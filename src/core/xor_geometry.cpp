#include "core/xor_geometry.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "math/binomial.hpp"
#include "math/stable.hpp"
#include "math/summation.hpp"

namespace dht::core {

math::LogReal XorGeometry::distance_count(int h, int d) const {
  DHT_CHECK(d >= 1, "identifier length d must be >= 1");
  if (h < 1 || h > d) {
    return math::LogReal::zero();
  }
  return math::binomial(d, h);
}

double XorGeometry::phase_failure(int m, double q, int d) const {
  DHT_CHECK(m >= 1, "phase index m must be >= 1");
  DHT_CHECK(d >= 1, "identifier length d must be >= 1");
  DHT_CHECK(q >= 0.0 && q <= 1.0, "failure probability q must be in [0, 1]");
  if (q == 0.0) {
    return 0.0;
  }
  if (q == 1.0) {
    return 1.0;
  }
  // Q(m) = q^m [1 + sum_{k=1}^{m-1} prod_{j=m-k}^{m-1} (1 - q^j)].
  // The k-th product extends the (k-1)-th downward by the factor
  // (1 - q^{m-k}), so the whole sum costs O(m).
  math::NeumaierSum bracket;
  bracket.add(1.0);
  double running_product = 1.0;
  for (int k = 1; k <= m - 1; ++k) {
    running_product *= math::one_minus_pow(q, static_cast<double>(m - k));
    bracket.add(running_product);
  }
  const double qm = math::pow_q(q, static_cast<double>(m));
  return std::clamp(qm * bracket.total(), 0.0, 1.0);
}

double XorGeometry::phase_failure_approximation(int m, double q) {
  DHT_CHECK(m >= 1, "phase index m must be >= 1");
  DHT_CHECK(q >= 0.0 && q < 1.0, "approximation requires q in [0, 1)");
  if (q == 0.0) {
    return 0.0;
  }
  const double qm = math::pow_q(q, static_cast<double>(m));
  const double qm1 = math::pow_q(q, static_cast<double>(m - 1));
  const double tail =
      (q / (1.0 - q)) *
      (qm1 * static_cast<double>(m - 1) -
       math::one_minus_pow(q, static_cast<double>(m + 1)) / (1.0 - q));
  return std::clamp(qm * (static_cast<double>(m) + tail), 0.0, 1.0);
}

}  // namespace dht::core
