// Deterministic Zipf (power-law) rank sampler for the workload layer.
//
// Query popularity in deployed DHTs is heavily skewed: a handful of hot
// objects draw most of the traffic.  ZipfSampler models that as
// P(rank = r) proportional to 1 / (r + 1)^s over ranks 0..n-1 (s = 0 is the
// uniform workload), via exact CDF inversion: one uniform draw, one binary
// search over a precomputed partial-sum table.  The table is built once,
// purely from (n, s), so a sample is a pure function of (n, s, the drawn
// u64) -- which is what lets the batched sparse estimator sample workload
// targets from its per-lane CounterRng streams and stay bit-identical at
// any thread count (the draw sequence never depends on scheduling).
//
// Memory is 8 bytes per rank (the CDF table); n is capped at 2^26 ranks,
// matching the engines' population cap.
#pragma once

#include <cstdint>
#include <vector>

namespace dht::math {

class ZipfSampler {
 public:
  /// Ranks 0..n-1 with P(r) proportional to (r + 1)^-s.  Preconditions:
  /// 1 <= n <= 2^26, s >= 0 and finite.
  ZipfSampler(std::uint64_t n, double s);

  std::uint64_t ranks() const noexcept { return cdf_.size(); }
  double skew() const noexcept { return s_; }

  /// P(rank = r); exact to the table's normalization.
  double probability(std::uint64_t rank) const;

  /// One sample: a single uniform01 draw inverted through the CDF.  Works
  /// with any generator exposing uniform01 (math::Rng for the sequential
  /// engines, math::CounterRng for the batched estimator's lane streams).
  template <typename Generator>
  std::uint64_t sample(Generator& rng) const {
    return invert(rng.uniform01());
  }

  /// The rank whose CDF interval contains u (u in [0, 1)); the
  /// deterministic core of sample().
  std::uint64_t invert(double u) const;

 private:
  double s_ = 0.0;
  std::vector<double> cdf_;  // cdf_[r] = P(rank <= r), cdf_.back() == 1
};

}  // namespace dht::math
