#include "math/summation.hpp"

#include <cmath>

namespace dht::math {

void NeumaierSum::add(double value) noexcept {
  const double t = sum_ + value;
  if (std::abs(sum_) >= std::abs(value)) {
    compensation_ += (sum_ - t) + value;
  } else {
    compensation_ += (value - t) + sum_;
  }
  sum_ = t;
}

double sum_compensated(std::span<const double> values) noexcept {
  NeumaierSum acc;
  for (double v : values) {
    acc.add(v);
  }
  return acc.total();
}

namespace {

double pairwise_recurse(std::span<const double> values) noexcept {
  constexpr std::size_t kBaseCase = 32;
  if (values.size() <= kBaseCase) {
    double s = 0.0;
    for (double v : values) {
      s += v;
    }
    return s;
  }
  const std::size_t half = values.size() / 2;
  return pairwise_recurse(values.first(half)) +
         pairwise_recurse(values.subspan(half));
}

}  // namespace

double sum_pairwise(std::span<const double> values) noexcept {
  return pairwise_recurse(values);
}

}  // namespace dht::math
