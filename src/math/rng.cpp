#include "math/rng.hpp"

#include <bit>

namespace dht::math {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept : lineage_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() noexcept {
  // Top 53 bits scaled by 2^-53: uniform on [0, 1), every double reachable.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform_below(std::uint64_t bound) noexcept {
  // Lemire-style rejection: accept unless the draw falls into the biased
  // remainder zone of size (2^64 mod bound).
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::uint64_t Rng::uniform_range(std::uint64_t lo, std::uint64_t hi) noexcept {
  const std::uint64_t width = hi - lo + 1;
  if (width == 0) {  // full 64-bit range
    return next_u64();
  }
  return lo + uniform_below(width);
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return uniform01() < p;
}

std::uint64_t CounterRng::uniform_below(std::uint64_t bound) noexcept {
#if defined(__SIZEOF_INT128__)
  // Lemire (2019), "Fast Random Integer Generation in an Interval": map the
  // draw through a 64x64->128 multiply; the high word is the unbiased
  // result unless the low word falls in the 2^64 mod bound remainder zone,
  // which is detected with at most one division (and only when
  // low < bound, i.e. with probability < bound / 2^64).
  unsigned __int128 m =
      static_cast<unsigned __int128>(next_u64()) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      m = static_cast<unsigned __int128>(next_u64()) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
#else
  // No 128-bit multiply: fall back to threshold rejection (same
  // distribution, different accepted-draw mapping; value streams are only
  // pinned on 128-bit-capable platforms).
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) {
      return r % bound;
    }
  }
#endif
}

Rng Rng::fork(std::uint64_t stream_id) const noexcept {
  // Derive a child seed by mixing the lineage with the stream id through two
  // SplitMix64 rounds; distinct (lineage, stream_id) pairs give distinct,
  // well-separated child states.
  std::uint64_t mix = lineage_ ^ (0x9e3779b97f4a7c15ULL + stream_id);
  (void)splitmix64(mix);
  const std::uint64_t child_seed = splitmix64(mix);
  return Rng(child_seed);
}

CounterRng Rng::counter_stream(std::uint64_t stream_id) const noexcept {
  // Same two-round SplitMix64 lineage mixing as fork(), domain-separated by
  // an arbitrary odd constant so counter_stream(i) never aliases fork(i).
  std::uint64_t mix =
      lineage_ ^ 0xc2b2ae3d27d4eb4fULL ^ (0x9e3779b97f4a7c15ULL + stream_id);
  (void)splitmix64(mix);
  return CounterRng(splitmix64(mix));
}

}  // namespace dht::math
