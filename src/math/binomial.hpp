// Binomial coefficients.
//
// The tree, hypercube and XOR geometries all have distance distribution
// n(h) = C(d, h) (paper Sections 4.2, 4.3.1, 4.3.2).  Figure 7 evaluates at
// d = 100, so coefficients are provided in log space via lgamma; exact
// 64-bit values are available for the ranges where they fit, which the tests
// use to validate the log-space path.
#pragma once

#include <cstdint>

#include "math/logreal.hpp"

namespace dht::math {

/// C(n, k) as a LogReal.  Returns zero for k < 0 or k > n.
/// Precondition: n >= 0.
LogReal binomial(int n, int k);

/// log C(n, k).  Returns -infinity for k < 0 or k > n.
/// Precondition: n >= 0.
double log_binomial(int n, int k);

/// Exact C(n, k) in 64 bits.  Precondition: 0 <= n <= 62 (the largest n for
/// which every C(n, k) fits in uint64_t is 67; 62 keeps the multiply-divide
/// loop overflow-free without 128-bit arithmetic) and 0 <= k <= n.
std::uint64_t binomial_exact(int n, int k);

}  // namespace dht::math
