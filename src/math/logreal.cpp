#include "math/logreal.hpp"

#include <cmath>

#include "common/check.hpp"

namespace dht::math {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kLn2 = 0.6931471805599453094172321214581766;
}  // namespace

LogReal LogReal::from_value(double value) {
  DHT_CHECK(!std::isnan(value), "LogReal cannot represent NaN");
  DHT_CHECK(value >= 0.0, "LogReal represents non-negative values only");
  return from_log(std::log(value));
}

LogReal LogReal::exp2_int(long long k) noexcept {
  return from_log(static_cast<double>(k) * kLn2);
}

LogReal& LogReal::operator*=(LogReal rhs) noexcept {
  if (is_zero() || rhs.is_zero()) {
    // 0 * x == 0 even when the other factor's log is +inf; adding the raw
    // logs would produce NaN from (-inf) + (+inf).
    log_ = kNegInf;
    return *this;
  }
  log_ += rhs.log_;
  return *this;
}

LogReal& LogReal::operator/=(LogReal rhs) {
  DHT_CHECK(!rhs.is_zero(), "LogReal division by zero");
  if (is_zero()) {
    return *this;
  }
  log_ -= rhs.log_;
  return *this;
}

LogReal& LogReal::operator+=(LogReal rhs) noexcept {
  if (rhs.is_zero()) {
    return *this;
  }
  if (is_zero()) {
    log_ = rhs.log_;
    return *this;
  }
  // log(e^a + e^b) = max + log1p(e^(min - max)); keeping the max outside the
  // exponential avoids overflow for large magnitudes.
  const double hi = std::max(log_, rhs.log_);
  const double lo = std::min(log_, rhs.log_);
  log_ = hi + std::log1p(std::exp(lo - hi));
  return *this;
}

LogReal& LogReal::operator-=(LogReal rhs) {
  if (rhs.is_zero()) {
    return *this;
  }
  DHT_CHECK(rhs.log_ <= log_,
            "LogReal subtraction would produce a negative value");
  if (rhs.log_ == log_) {
    log_ = kNegInf;
    return *this;
  }
  // log(e^a - e^b) = a + log1p(-e^(b - a)) with b < a.
  log_ += std::log1p(-std::exp(rhs.log_ - log_));
  return *this;
}

LogReal pow(LogReal x, double exponent) {
  if (x.is_zero()) {
    DHT_CHECK(exponent > 0.0, "0 raised to a non-positive power");
    return LogReal::zero();
  }
  return LogReal::from_log(x.log() * exponent);
}

}  // namespace dht::math
