#include "math/stable.hpp"

#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace dht::math {

double pow_int(double x, std::uint64_t n) {
  DHT_CHECK(std::isfinite(x), "pow_int requires finite base");
  double result = 1.0;
  double base = x;
  while (n != 0) {
    if (n & 1) {
      result *= base;
    }
    base *= base;
    n >>= 1;
  }
  return result;
}

double pow_q(double q, double e) {
  DHT_CHECK(q >= 0.0 && q <= 1.0, "pow_q requires q in [0, 1]");
  DHT_CHECK(e >= 0.0, "pow_q requires non-negative exponent");
  if (e == 0.0) {
    return 1.0;
  }
  if (q == 0.0) {
    return 0.0;
  }
  if (q == 1.0) {
    return 1.0;
  }
  return std::exp(e * std::log(q));
}

double one_minus_pow(double q, double m) {
  DHT_CHECK(q >= 0.0 && q <= 1.0, "one_minus_pow requires q in [0, 1]");
  DHT_CHECK(m >= 0.0, "one_minus_pow requires m >= 0");
  if (m == 0.0) {
    return 0.0;
  }
  if (q == 0.0) {
    return 1.0;
  }
  if (q == 1.0) {
    return 0.0;
  }
  // 1 - q^m = 1 - exp(m log q) = -expm1(m log q); expm1 keeps precision when
  // m log q is tiny (q -> 1) where 1 - exp(...) would cancel.
  return -std::expm1(m * std::log(q));
}

double log_one_minus_pow(double q, double m) {
  DHT_CHECK(q >= 0.0 && q <= 1.0, "log_one_minus_pow requires q in [0, 1]");
  DHT_CHECK(m >= 0.0, "log_one_minus_pow requires m >= 0");
  if (m == 0.0 || q == 1.0) {
    return -std::numeric_limits<double>::infinity();
  }
  if (q == 0.0) {
    return 0.0;
  }
  const double log_pow = m * std::log(q);  // log(q^m), always <= 0
  if (log_pow > -1e-12) {
    // q^m is within a rounding error of 1; 1 - q^m ~= -log_pow.
    return std::log(-log_pow);
  }
  return std::log1p(-std::exp(log_pow));
}

double geometric_sum(double x, double terms) {
  DHT_CHECK(x >= 0.0 && x <= 1.0, "geometric_sum requires x in [0, 1]");
  DHT_CHECK(terms >= 0.0, "geometric_sum requires terms >= 0");
  if (terms == 0.0) {
    return 0.0;
  }
  if (x == 0.0) {
    return 1.0;  // only the j = 0 term survives
  }
  if (x == 1.0) {
    return terms;
  }
  const double log_x = std::log(x);
  if (terms * (-log_x) < 1e-8) {
    // x^terms ~= 1: the series is effectively `terms` identical terms.  The
    // closed form would divide two quantities that both cancel to ~0.
    return terms;
  }
  // (1 - x^terms) / (1 - x), both pieces via expm1 for stability near x = 1.
  const double numerator = -std::expm1(terms * log_x);
  const double denominator = -std::expm1(log_x);
  return numerator / denominator;
}

}  // namespace dht::math
