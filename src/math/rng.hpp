// Deterministic pseudo-random number generation.
//
// Every random quantity in the simulator (routing-table suffixes, failure
// masks, pair sampling, Markov-chain walks) must be reproducible from a
// seed so that benchmark tables and statistical tests are stable.  Rng wraps
// xoshiro256** (Blackman & Vigna, public domain) seeded via SplitMix64, and
// provides the unbiased integer/real/Bernoulli draws the library needs.
#pragma once

#include <cstdint>

namespace dht::math {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Counter-based stateless stream (SplitMix-style): draw i is a pure
/// function of (key, i), so any draw can be computed without generating its
/// predecessors.  This is what lets the interleaved route lanes of the
/// parallel engines own independent, jump-free streams -- lane draws are a
/// pure function of (seed, shard, lane, draw index) with no shared
/// sequential state.  Obtain keyed streams via Rng::counter_stream so the
/// key derivation shares the fork() lineage mixing.
///
/// The object also keeps a cursor so it can serve as a drop-in sequential
/// generator: next_u64() == at(counter++).
class CounterRng {
 public:
  using result_type = std::uint64_t;

  CounterRng() = default;
  explicit CounterRng(std::uint64_t key) noexcept : key_(key) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// The i-th draw of the stream; pure, independent of the cursor.
  std::uint64_t at(std::uint64_t counter) const noexcept {
    // SplitMix64 output function on the keyed counter sequence: the state
    // walked by sequential SplitMix64 is exactly key + i * gamma, so this
    // reproduces that generator's statistical quality without its
    // sequential dependence.
    std::uint64_t z = key_ + (counter + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  result_type operator()() noexcept { return next_u64(); }
  std::uint64_t next_u64() noexcept { return at(counter_++); }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound); unbiased via Lemire's nearly
  /// divisionless bounded draw -- one 64x64->128 multiply on the fast path,
  /// the remainder computed only in the rare biased-low-bits case.
  /// Precondition: bound > 0.
  std::uint64_t uniform_below(std::uint64_t bound) noexcept;

  /// True with probability p (p clamped to [0, 1]).
  bool bernoulli(double p) noexcept {
    if (p <= 0.0) {
      return false;
    }
    if (p >= 1.0) {
      return true;
    }
    return uniform01() < p;
  }

  std::uint64_t key() const noexcept { return key_; }
  std::uint64_t counter() const noexcept { return counter_; }

 private:
  std::uint64_t key_ = 0;
  std::uint64_t counter_ = 0;
};

/// xoshiro256** generator with convenience distributions.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words from SplitMix64(seed); any seed (including
  /// zero) yields a valid, well-mixed state.
  explicit Rng(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next raw 64-bit output.
  result_type operator()() noexcept { return next_u64(); }
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01() noexcept;

  /// Uniform integer in [0, bound); unbiased via rejection sampling.
  /// Precondition: bound > 0.
  std::uint64_t uniform_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.  Precondition: lo <= hi.
  std::uint64_t uniform_range(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// True with probability p (p clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// An independent generator derived from this one's seed lineage and the
  /// given stream id; forking with distinct ids yields decorrelated streams
  /// regardless of how much either stream is consumed.
  Rng fork(std::uint64_t stream_id) const noexcept;

  /// An independent counter-based stream derived from this one's seed
  /// lineage and the given stream id (the same lineage mixing as fork(),
  /// domain-separated so counter_stream(i) and fork(i) are unrelated).
  /// Like fork(), never advances this generator.
  CounterRng counter_stream(std::uint64_t stream_id) const noexcept;

 private:
  Rng() = default;

  std::uint64_t s_[4] = {};
  std::uint64_t lineage_ = 0;  // remembers the seed for fork()
};

}  // namespace dht::math
