// Deterministic pseudo-random number generation.
//
// Every random quantity in the simulator (routing-table suffixes, failure
// masks, pair sampling, Markov-chain walks) must be reproducible from a
// seed so that benchmark tables and statistical tests are stable.  Rng wraps
// xoshiro256** (Blackman & Vigna, public domain) seeded via SplitMix64, and
// provides the unbiased integer/real/Bernoulli draws the library needs.
#pragma once

#include <cstdint>

namespace dht::math {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** generator with convenience distributions.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words from SplitMix64(seed); any seed (including
  /// zero) yields a valid, well-mixed state.
  explicit Rng(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next raw 64-bit output.
  result_type operator()() noexcept { return next_u64(); }
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01() noexcept;

  /// Uniform integer in [0, bound); unbiased via rejection sampling.
  /// Precondition: bound > 0.
  std::uint64_t uniform_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.  Precondition: lo <= hi.
  std::uint64_t uniform_range(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// True with probability p (p clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// An independent generator derived from this one's seed lineage and the
  /// given stream id; forking with distinct ids yields decorrelated streams
  /// regardless of how much either stream is consumed.
  Rng fork(std::uint64_t stream_id) const noexcept;

 private:
  Rng() = default;

  std::uint64_t s_[4] = {};
  std::uint64_t lineage_ = 0;  // remembers the seed for fork()
};

}  // namespace dht::math
