#include "math/binomial.hpp"

#include <cmath>

#include "common/check.hpp"

namespace dht::math {

double log_binomial(int n, int k) {
  DHT_CHECK(n >= 0, "binomial requires n >= 0");
  if (k < 0 || k > n) {
    return -std::numeric_limits<double>::infinity();
  }
  if (k == 0 || k == n) {
    return 0.0;
  }
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
         std::lgamma(n - k + 1.0);
}

LogReal binomial(int n, int k) {
  return LogReal::from_log(log_binomial(n, k));
}

std::uint64_t binomial_exact(int n, int k) {
  DHT_CHECK(n >= 0 && n <= 62, "binomial_exact supports 0 <= n <= 62");
  DHT_CHECK(k >= 0 && k <= n, "binomial_exact requires 0 <= k <= n");
  if (k > n - k) {
    k = n - k;
  }
  // Multiplicative formula; dividing by i at each step keeps the running
  // value integral: the product of i consecutive integers is divisible by i!.
  std::uint64_t result = 1;
  for (int i = 1; i <= k; ++i) {
    result = result * static_cast<std::uint64_t>(n - k + i) /
             static_cast<std::uint64_t>(i);
  }
  return result;
}

}  // namespace dht::math
