#include "math/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace dht::math {

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : s_(s) {
  DHT_CHECK(n >= 1, "zipf sampler needs at least one rank");
  DHT_CHECK(n <= (std::uint64_t{1} << 26),
            "zipf sampler rank count exceeds the 2^26 population cap");
  DHT_CHECK(std::isfinite(s) && s >= 0.0,
            "zipf skew must be finite and >= 0");
  cdf_.resize(n);
  // Partial sums of (r + 1)^-s, normalized in a second pass.  Built once
  // per sampler from (n, s) alone -- every consumer sees the same table, so
  // inversion results depend only on the drawn u.
  double total = 0.0;
  for (std::uint64_t r = 0; r < n; ++r) {
    total += s == 0.0 ? 1.0
                      : std::pow(static_cast<double>(r + 1), -s);
    cdf_[r] = total;
  }
  for (std::uint64_t r = 0; r < n; ++r) {
    cdf_[r] /= total;
  }
  cdf_.back() = 1.0;  // guard the top interval against rounding
}

double ZipfSampler::probability(std::uint64_t rank) const {
  DHT_CHECK(rank < cdf_.size(), "zipf rank out of range");
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

std::uint64_t ZipfSampler::invert(double u) const {
  // First r with cdf_[r] > u; u < 1 and cdf_.back() == 1 keep it in range.
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

}  // namespace dht::math
