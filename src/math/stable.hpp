// Numerically stable elementary kernels.
//
// Every Q(m) expression in the paper is built from powers q^m, complements
// 1 - q^m and truncated geometric series.  Evaluated naively these lose all
// precision exactly where the paper's claims live (q near 0, m large, ratios
// near 1), so the kernels here route through log1p/expm1.
#pragma once

#include <cstdint>

namespace dht::math {

/// x^n for integer n >= 0 by binary exponentiation.  Underflows to 0
/// gracefully; x must be finite.
double pow_int(double x, std::uint64_t n);

/// q^e for real exponent e where 0 <= q <= 1, computed as exp(e*log q).
/// Returns 1 for e == 0 (including q == 0, matching the combinatorial
/// convention q^0 = 1) and 0 for q == 0, e > 0.
double pow_q(double q, double e);

/// 1 - q^m computed as -expm1(m * log q); exact to one ulp even when q^m is
/// denormal or when q is within 1e-16 of 1.  Preconditions: 0 <= q <= 1,
/// m >= 0.  m == 0 returns 0.
double one_minus_pow(double q, double m);

/// log(1 - q^m) (== log(one_minus_pow)) staying in log space.
/// Returns -infinity when q == 1 and m > 0.  Preconditions as above.
double log_one_minus_pow(double q, double m);

/// Truncated geometric series sum_{j=0}^{terms-1} x^j for 0 <= x <= 1,
/// terms >= 0.  Stable for x near 1 (returns ~terms) and for astronomically
/// large `terms` (converges to 1/(1-x)); `terms` is a double so callers can
/// pass 2^(m-1) for m far beyond 64 (paper's ring Q(m)).
double geometric_sum(double x, double terms);

}  // namespace dht::math
