// Log-domain non-negative reals.
//
// The RCM routability formula (paper Eq. 3) divides sums of terms like
// C(d, h) * p(h, q) by (1-q)*2^d - 1.  Figure 7(a) evaluates this at
// d = 100 and the library supports arbitrary d, so all aggregation runs in
// log space.  LogReal stores log(x) for x >= 0 (zero is represented by
// -infinity) and provides exact-rounding-friendly +, -, *, / built on
// log1p/expm1.
#pragma once

#include <cmath>
#include <limits>

namespace dht::math {

/// A non-negative real number stored as its natural logarithm.
///
/// Supports the four arithmetic operations (subtraction requires a
/// non-negative result), integer/real powers, and comparisons.  The value
/// zero is representable (log = -infinity); negative values are not.
class LogReal {
 public:
  /// Zero.
  constexpr LogReal() noexcept
      : log_(-std::numeric_limits<double>::infinity()) {}

  /// Wraps a number already in log space.
  static constexpr LogReal from_log(double log_value) noexcept {
    LogReal r;
    r.log_ = log_value;
    return r;
  }

  /// Converts a plain non-negative value.  Throws dht::PreconditionError for
  /// negative or NaN input.
  static LogReal from_value(double value);

  /// The constant 1.
  static constexpr LogReal one() noexcept { return from_log(0.0); }

  /// The constant 0.
  static constexpr LogReal zero() noexcept { return LogReal(); }

  /// exp2_int(k) == 2^k, exact in log space for any integer k (also huge k).
  static LogReal exp2_int(long long k) noexcept;

  /// Natural logarithm of the stored value (-infinity for zero).
  constexpr double log() const noexcept { return log_; }

  /// The stored value as a double.  Overflows to +infinity or underflows to
  /// zero when outside double range; that is the caller's concern.
  double value() const noexcept { return std::exp(log_); }

  constexpr bool is_zero() const noexcept {
    return log_ == -std::numeric_limits<double>::infinity();
  }

  LogReal& operator*=(LogReal rhs) noexcept;
  LogReal& operator/=(LogReal rhs);
  LogReal& operator+=(LogReal rhs) noexcept;
  /// Subtraction; throws dht::PreconditionError if rhs > *this.
  LogReal& operator-=(LogReal rhs);

  friend LogReal operator*(LogReal a, LogReal b) noexcept { return a *= b; }
  friend LogReal operator/(LogReal a, LogReal b) { return a /= b; }
  friend LogReal operator+(LogReal a, LogReal b) noexcept { return a += b; }
  friend LogReal operator-(LogReal a, LogReal b) { return a -= b; }

  friend constexpr bool operator==(LogReal a, LogReal b) noexcept {
    return a.log_ == b.log_;
  }
  friend constexpr bool operator<(LogReal a, LogReal b) noexcept {
    return a.log_ < b.log_;
  }
  friend constexpr bool operator>(LogReal a, LogReal b) noexcept {
    return b < a;
  }
  friend constexpr bool operator<=(LogReal a, LogReal b) noexcept {
    return !(b < a);
  }
  friend constexpr bool operator>=(LogReal a, LogReal b) noexcept {
    return !(a < b);
  }
  friend constexpr bool operator!=(LogReal a, LogReal b) noexcept {
    return !(a == b);
  }

 private:
  double log_;
};

/// x^e for real exponent e >= 0 (e < 0 allowed when x > 0).
LogReal pow(LogReal x, double exponent);

/// Sums values in log space with a running log-sum-exp accumulator.
/// Equivalent to repeated operator+= but kept as a named helper for clarity
/// at call sites that fold over distance distributions.
class LogSum {
 public:
  void add(LogReal term) noexcept { total_ += term; }
  LogReal total() const noexcept { return total_; }

 private:
  LogReal total_;
};

}  // namespace dht::math
