// Numeric diagnosis of infinite-series convergence.
//
// The paper's scalability criterion (Section 5, via Knopp's theorem) reduces
// to: does sum_m Q(m) converge?  Each geometry carries an analytic answer;
// this module provides an independent *numeric* corroboration used by the
// scalability classifier and its tests.
//
// Method: dyadic block masses B_k = sum_{m in [2^k, 2^{k+1})} term(m)
// (Cauchy condensation, evaluated numerically).  Geometric-type tails --
// every scalable geometry in the paper -- send B_{k+1}/B_k to 0; constant
// or harmonic-type tails -- the unscalable ones -- keep B_{k+1}/B_k >= 1.
// The result is a best-effort verdict with the evidence attached; it is a
// diagnostic, not a proof, and borderline decay rates report inconclusive.
#pragma once

#include <functional>
#include <string>

namespace dht::math {

/// Outcome of a numeric convergence diagnosis of sum_{m>=1} term(m).
enum class SeriesVerdict {
  kConvergent,
  kDivergent,
  kInconclusive,
};

const char* to_string(SeriesVerdict verdict) noexcept;

/// Evidence gathered while diagnosing a series.
struct SeriesDiagnosis {
  SeriesVerdict verdict = SeriesVerdict::kInconclusive;
  /// Partial sum over the inspected prefix.
  double partial_sum = 0.0;
  /// Last inspected term.
  double last_term = 0.0;
  /// Mass ratio of the last two dyadic blocks (0 when the tail vanished).
  double tail_ratio = 0.0;
  /// Human-readable explanation of which rule produced the verdict.
  std::string explanation;
};

/// Tuning knobs for diagnose_series.
struct SeriesOptions {
  /// Number of leading terms to inspect (>= 64 so at least two dyadic
  /// blocks, [16,32) and [32,64), are available).
  int max_terms = 4096;
  /// A dyadic block summing below this counts as a vanished tail.
  double zero_epsilon = 1e-280;
  /// Block-mass ratio at or below which the tail is called geometric-type
  /// (convergent).
  double convergent_block_ratio = 0.7;
  /// Block-mass ratio at or above which the tail is called divergent,
  /// provided the block mass also exceeds divergence_floor.
  double divergent_block_ratio = 0.95;
  /// Minimum last-block mass for a divergence verdict.
  double divergence_floor = 1e-12;
};

/// Diagnoses sum_{m=1}^{infinity} term(m).  `term` must return non-negative
/// values (the paper's Q(m) are probabilities); negative values throw.
SeriesDiagnosis diagnose_series(const std::function<double(int)>& term,
                                const SeriesOptions& options = {});

}  // namespace dht::math
