#include "math/series.hpp"

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/strfmt.hpp"
#include "math/summation.hpp"

namespace dht::math {

const char* to_string(SeriesVerdict verdict) noexcept {
  switch (verdict) {
    case SeriesVerdict::kConvergent:
      return "convergent";
    case SeriesVerdict::kDivergent:
      return "divergent";
    case SeriesVerdict::kInconclusive:
      return "inconclusive";
  }
  return "unknown";
}

SeriesDiagnosis diagnose_series(const std::function<double(int)>& term,
                                const SeriesOptions& options) {
  DHT_CHECK(options.max_terms >= 64, "diagnose_series needs >= 64 terms");

  // Evaluate the inspected prefix.
  std::vector<double> terms;
  terms.reserve(static_cast<size_t>(options.max_terms));
  NeumaierSum partial;
  for (int m = 1; m <= options.max_terms; ++m) {
    const double t = term(m);
    DHT_CHECK(t >= 0.0, "series terms must be non-negative");
    terms.push_back(t);
    partial.add(t);
  }

  SeriesDiagnosis out;
  out.partial_sum = partial.total();
  out.last_term = terms.back();

  // Dyadic block masses B_k = sum of terms with index in [2^k, 2^{k+1}).
  // For a convergent series the block masses vanish; for the divergent
  // series RCM meets (constant Q, harmonic-like tails) consecutive blocks
  // carry comparable or growing mass.  Blocks sidestep the weakness of a
  // per-term ratio test, which cannot tell a slowly decaying geometric tail
  // from a harmonic one.
  std::vector<double> block_mass;
  std::vector<int> block_begin;  // first index (1-based) of each block
  for (int begin = 16; 2 * begin <= options.max_terms + 1; begin *= 2) {
    NeumaierSum mass;
    for (int m = begin; m < 2 * begin; ++m) {
      mass.add(terms[static_cast<size_t>(m) - 1]);
    }
    block_mass.push_back(mass.total());
    block_begin.push_back(begin);
  }
  DHT_CHECK(block_mass.size() >= 2,
            "diagnose_series needs max_terms >= 64 for two dyadic blocks");

  const double last_block = block_mass.back();
  const double prev_block = block_mass[block_mass.size() - 2];
  out.tail_ratio = prev_block > 0.0 ? last_block / prev_block
                                    : 0.0;

  // Shortcut: the tail already underflowed -- certainly summable.
  if (last_block <= options.zero_epsilon) {
    out.verdict = SeriesVerdict::kConvergent;
    out.explanation = strfmt(
        "vanishing tail: the block of terms [%d, %d) sums below %.1e",
        block_begin.back(), 2 * block_begin.back(), options.zero_epsilon);
    return out;
  }

  if (out.tail_ratio <= options.convergent_block_ratio) {
    out.verdict = SeriesVerdict::kConvergent;
    out.explanation = strfmt(
        "block test: mass of terms [%d, %d) is %.3e, a factor %.4f of the "
        "previous block -- geometric-type decay",
        block_begin.back(), 2 * block_begin.back(), last_block,
        out.tail_ratio);
    return out;
  }

  if (out.tail_ratio >= options.divergent_block_ratio &&
      last_block > options.divergence_floor) {
    out.verdict = SeriesVerdict::kDivergent;
    out.explanation = strfmt(
        "block test: consecutive dyadic blocks carry non-decreasing mass "
        "(%.3e then %.3e, ratio %.4f) -- the tail cannot sum to a finite "
        "value at this rate",
        prev_block, last_block, out.tail_ratio);
    return out;
  }

  out.verdict = SeriesVerdict::kInconclusive;
  out.explanation = strfmt(
      "block-mass ratio %.4f sits between the convergent (<= %.2f) and "
      "divergent (>= %.2f) thresholds; extend max_terms for a sharper "
      "diagnosis",
      out.tail_ratio, options.convergent_block_ratio,
      options.divergent_block_ratio);
  return out;
}

}  // namespace dht::math
