// Compensated summation.
//
// Routability sums accumulate up to d binomially weighted terms spanning many
// orders of magnitude; Monte-Carlo statistics accumulate millions of samples.
// NeumaierSum (improved Kahan-Babuska) keeps the error independent of length.
#pragma once

#include <cstddef>
#include <span>

namespace dht::math {

/// Running compensated sum (Neumaier's variant of Kahan summation).
/// Unlike plain Kahan it remains correct when an addend is larger in
/// magnitude than the running total.
class NeumaierSum {
 public:
  void add(double value) noexcept;
  /// The compensated total.
  double total() const noexcept { return sum_ + compensation_; }
  void reset() noexcept {
    sum_ = 0.0;
    compensation_ = 0.0;
  }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Compensated sum of a range.
double sum_compensated(std::span<const double> values) noexcept;

/// Pairwise (cascade) summation; O(log n) error growth, used as an
/// independent reference in tests.
double sum_pairwise(std::span<const double> values) noexcept;

}  // namespace dht::math
