#include "math/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace dht::math {

double Proportion::point() const noexcept {
  if (trials == 0) {
    return 0.0;
  }
  return static_cast<double>(successes) / static_cast<double>(trials);
}

Interval Proportion::wilson(double z) const {
  DHT_CHECK(trials > 0, "Wilson interval requires at least one trial");
  DHT_CHECK(z > 0.0, "Wilson interval requires z > 0");
  const double n = static_cast<double>(trials);
  const double p = point();
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double spread =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  Interval out;
  out.lo = std::max(0.0, center - spread);
  out.hi = std::min(1.0, center + spread);
  return out;
}

void RunningStat::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const noexcept {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace dht::math
