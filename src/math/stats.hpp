// Small statistics toolkit for Monte-Carlo estimates.
//
// The simulator reports routability as a success proportion over sampled
// pairs; tests compare those proportions against analytical predictions, so
// they need honest confidence intervals (Wilson score -- well-behaved at
// proportions near 0 and 1, where the figures in the paper live).
#pragma once

#include <cstdint>

namespace dht::math {

/// A [lo, hi] interval on a proportion.
struct Interval {
  double lo = 0.0;
  double hi = 1.0;

  bool contains(double x) const noexcept { return x >= lo && x <= hi; }
  double width() const noexcept { return hi - lo; }
};

/// Success counts for a Bernoulli experiment.
struct Proportion {
  std::uint64_t successes = 0;
  std::uint64_t trials = 0;

  void record(bool success) noexcept {
    successes += success ? 1 : 0;
    ++trials;
  }

  /// Pools another experiment's counts into this one.  Exact (integer
  /// counters), so merging shards in any order equals one combined pass.
  void merge(const Proportion& other) noexcept {
    successes += other.successes;
    trials += other.trials;
  }

  /// Point estimate successes/trials (0 when no trials).
  double point() const noexcept;

  /// Wilson score interval at z standard normal quantiles (z = 1.96 for a
  /// 95% interval).  Precondition: trials > 0, z > 0.
  Interval wilson(double z) const;
};

/// Welford running mean/variance accumulator.
class RunningStat {
 public:
  void add(double x) noexcept;
  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace dht::math
