#include "obs/trace.hpp"

#include <cstdio>

namespace dht::obs {

namespace {

// Lane ids are per (thread, Trace) pair.  A plain thread_local uint32
// would leak lane ids across Trace instances (and across perf_simulator
// sections); caching the owning Trace alongside the id keeps assignment
// correct when several traces live in one process.
struct LaneCache {
  const void* owner = nullptr;
  std::uint32_t lane = 0;
};
thread_local LaneCache t_lane_cache;

}  // namespace

Trace::Trace() : epoch_(std::chrono::steady_clock::now()) {}

std::uint32_t Trace::lane_for_this_thread() {
  // Caller holds mutex_.
  if (t_lane_cache.owner != this) {
    t_lane_cache.owner = this;
    t_lane_cache.lane = next_lane_++;
  }
  return t_lane_cache.lane;
}

void Trace::record(const char* name,
                   std::chrono::steady_clock::time_point start,
                   std::chrono::steady_clock::time_point end) {
  const auto ns = [this](std::chrono::steady_clock::time_point t) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t - epoch_)
            .count());
  };
  const std::uint64_t start_ns = ns(start);
  const std::uint64_t duration_ns = ns(end) - start_ns;
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(
      Event{name, lane_for_this_thread(), start_ns, duration_ns});
}

std::vector<Trace::Event> Trace::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

bool Trace::write_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::vector<Event> snapshot = events();
  // The array form ("[...]") is the oldest and most widely accepted
  // trace_event container; "X" (complete) events carry ts + dur in
  // microseconds.  Fractional microseconds keep sub-us phases visible.
  std::fputs("[\n", f);
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const Event& e = snapshot[i];
    std::fprintf(
        f,
        "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%u,"
        "\"ts\":%.3f,\"dur\":%.3f}%s\n",
        e.name, e.lane, static_cast<double>(e.start_ns) / 1000.0,
        static_cast<double>(e.duration_ns) / 1000.0,
        i + 1 < snapshot.size() ? "," : "");
  }
  std::fputs("]\n", f);
  return std::fclose(f) == 0;
}

}  // namespace dht::obs
