// Route-failure taxonomy: exact-integer classification of every
// non-delivered route/GET attempt.
//
// The engines' estimates (sim::RoutabilityEstimate,
// sparse::SparseEstimate) historically counted one failure cause -- the
// hop_limit_hits canary -- and folded every other drop into an anonymous
// attempts-minus-successes remainder.  This header replaces that with one
// enum and one counter array carried INSIDE the estimates, so the causes
// merge shard-by-shard with the same commutative integer sums as every
// other counter and stay bit-identical at any thread count.
//
// Conservation invariant (asserted in test_observability):
//
//   attempts == delivered + sum over causes of failures[cause]
//
// holds by construction: every record_* call increments attempts and
// exactly one of (hop count, one failure cell).
#pragma once

#include <cstdint>

namespace dht::obs {

/// Why a route (or GET attempt) did not arrive.
enum class RouteFailure : int {
  /// The forwarding rule found no admissible alive entry: the greedy
  /// candidate set existed but every member was dead or stale.  The
  /// static engines' only drop cause; the catch-all under churn.
  kDeadEntry = 0,
  /// The safety hop cap fired -- the historical hop_limit_hits canary,
  /// now one cell of this array (the JSONL column keeps its old name).
  kHopLimit = 1,
  /// The node holding the message departed mid-flight (in-flight
  /// measurement only: the world advanced during the lookup).
  kHolderDeparted = 2,
  /// The dropping node's entire successor list was invalid (every entry
  /// empty, self, or generation-stale) -- the ring's last-resort channel
  /// had collapsed, distinct from a routine dead greedy candidate.
  kSuccessorCollapse = 3,
  /// A path-cache hit forwarded straight to a cached owner that turned
  /// out dead.  Provably zero in the static engine (cached owners are
  /// re-walked past dead nodes at build time); the cell exists as the
  /// invariant's canary and for future churn-aware caches.
  kCacheDeadOwner = 4,
};

inline constexpr int kRouteFailureCount = 5;

/// Exact-integer failure counters, one cell per RouteFailure.  Merging in
/// shard order is associative and bit-identical to a single sequential
/// pass -- the same property every other estimate counter has.
struct FailureTaxonomy {
  std::uint64_t counts[kRouteFailureCount] = {0, 0, 0, 0, 0};

  void record(RouteFailure cause) noexcept {
    ++counts[static_cast<int>(cause)];
  }
  std::uint64_t operator[](RouteFailure cause) const noexcept {
    return counts[static_cast<int>(cause)];
  }
  void merge(const FailureTaxonomy& other) noexcept {
    for (int i = 0; i < kRouteFailureCount; ++i) {
      counts[i] += other.counts[i];
    }
  }
  std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (int i = 0; i < kRouteFailureCount; ++i) {
      sum += counts[i];
    }
    return sum;
  }

  bool operator==(const FailureTaxonomy&) const = default;
};

inline const char* to_string(RouteFailure cause) noexcept {
  switch (cause) {
    case RouteFailure::kDeadEntry:
      return "dead_entry";
    case RouteFailure::kHopLimit:
      return "hop_limit";
    case RouteFailure::kHolderDeparted:
      return "holder_departed";
    case RouteFailure::kSuccessorCollapse:
      return "succ_collapse";
    case RouteFailure::kCacheDeadOwner:
      return "cache_dead_owner";
  }
  return "unknown";
}

}  // namespace dht::obs
