// Route forensics: deterministic sampled hop-by-hop traces.
//
// When a routability regression lands, an aggregate estimate says THAT
// routes fail, not WHERE.  A RouteTrace records one sampled route's full
// hop sequence -- each hop's (slot, identifier, table rank, generation
// check) -- so two runs can be diffed route by route.
//
// Determinism contract: whether a pair is traced is a pure function of
// its (shard, round, pair index) -- index % stride == 0 with the stride
// derived from the requested sample budget -- never of scheduling, so
// the SAME pairs are traced at any thread count (asserted in
// test_observability).  Traced routes are re-routed against the frozen
// round snapshot through the scalar step kernels with no load accounting
// and no rng, so tracing perturbs neither the measured estimates nor any
// stream: goldens are unchanged with tracing on.
//
// Storage: a bounded ring buffer per shard (capacity = the per-shard
// sample budget); when more pairs match the stride than fit, the newest
// overwrite the oldest, deterministically.
#pragma once

#include <cstdint>
#include <vector>

namespace dht::obs {

/// One hop of a traced route: where the message landed and what the
/// forwarding rule saw when it picked that entry.
struct RouteHop {
  std::uint32_t slot = 0;   ///< slot index the message moved to
  std::uint64_t id = 0;     ///< that slot's identifier at trace time
  /// Index of the chosen entry in the forwarding node's table row
  /// (0-based); -1 when the hop came from the successor list instead.
  std::int32_t rank = -1;
  /// 1 when the chosen entry passed its generation check (the entry's
  /// install-time generation still matches the slot) -- routine; 0 would
  /// mean the kernel followed a stale entry, which the admissibility
  /// rules forbid, so this doubles as a kernel invariant canary.
  std::uint8_t gen_ok = 0;
};

/// One sampled route, end to end.
struct RouteTrace {
  std::uint64_t shard = 0;
  std::uint64_t round = 0;       ///< world round at trace time (warmup
                                 ///< rounds included, so traces from the
                                 ///< same world sort by age)
  std::uint64_t pair_index = 0;  ///< draw index within the round
  std::uint32_t source_slot = 0;
  std::uint64_t source_id = 0;
  std::uint64_t target_id = 0;
  std::uint32_t status = 0;  ///< 0 arrived, 1 dropped, 2 hop limit
  std::vector<RouteHop> hops;
};

/// Per-shard bounded collector.  `stride` selects pairs (index % stride
/// == 0); `capacity` bounds retention ring-buffer style.
class RouteTraceSink {
 public:
  RouteTraceSink() = default;
  RouteTraceSink(std::uint64_t stride, std::uint64_t capacity)
      : stride_(stride), capacity_(capacity) {}

  bool enabled() const noexcept { return capacity_ > 0 && stride_ > 0; }
  bool selects(std::uint64_t pair_index) const noexcept {
    return enabled() && pair_index % stride_ == 0;
  }

  void push(RouteTrace&& trace) {
    if (!enabled()) {
      return;
    }
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(trace));
    } else {
      ring_[next_overwrite_] = std::move(trace);
      next_overwrite_ = (next_overwrite_ + 1) % capacity_;
    }
  }

  /// Retained traces, oldest first.
  std::vector<RouteTrace> drain() {
    std::vector<RouteTrace> out;
    out.reserve(ring_.size());
    for (std::uint64_t i = 0; i < ring_.size(); ++i) {
      out.push_back(
          std::move(ring_[(next_overwrite_ + i) % ring_.size()]));
    }
    ring_.clear();
    next_overwrite_ = 0;
    return out;
  }

 private:
  std::uint64_t stride_ = 0;
  std::uint64_t capacity_ = 0;
  std::uint64_t next_overwrite_ = 0;
  std::vector<RouteTrace> ring_;
};

}  // namespace dht::obs
