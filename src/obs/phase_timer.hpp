// Phase profiles: scoped wall-clock attribution of engine phases.
//
// Every engine does the same kinds of work -- build a world, sweep
// lifecycles, refresh/repair tables, route, commit membership, merge shard
// results -- but until now only the total wall clock was reported, and
// finding out that (say) finger-refresh binary searches dominated a churn
// run required an external profiler.  A PhaseProfile is a tiny fixed
// array of per-phase second accumulators; engines keep one per shard,
// time their phases with the RAII PhaseTimer below, and reduce the shard
// profiles in shard order.
//
// Determinism contract: profiles carry TIMING only.  They never feed back
// into any engine decision, so attaching or detaching a profile cannot
// change a single counter -- the disabled path (null profile AND null
// trace) reads no clock at all.  The phase_*_s JSONL columns they produce
// are therefore exempt from the cross-thread determinism gates (the
// --ignore-columns flag of scripts/check_jsonl_determinism.py), while
// every taxonomy count column remains gated.
//
// Note on units: a shard-reduced phase figure is the SUM of per-shard
// wall clocks -- CPU-seconds of that phase.  At 1 thread the phases sum
// to the run's wall clock (the scripts/check_phase_sanity.py gate); at T
// threads they sum to up to T times it.
#pragma once

#include <chrono>

#include "obs/trace.hpp"

namespace dht::obs {

/// The engine phases every runner attributes its time to.  Phases a given
/// engine does not have (the static engines never sweep lifecycles) simply
/// stay zero.
enum class Phase : int {
  kWorldBuild = 0,       ///< overlay/ctx/world construction, workload tables
  kLifecycle = 1,        ///< churn lifecycle flips + rejoin/depart handling
  kRefreshRepair = 2,    ///< scheduled refresh, eager repair, list rebuilds
  kRoute = 3,            ///< route/GET measurement (in-flight mode's fused
                         ///< lifecycle sweep is attributed here; see
                         ///< sparse_trajectory.cpp)
  kMembershipCommit = 4, ///< joiner integration into the routable roster
  kMerge = 5,            ///< shard-order reduction of results
};

inline constexpr int kPhaseCount = 6;

/// Per-phase second accumulators.  Plain doubles: profiles are timing
/// side-channels, never determinism-gated, never fed back into engines.
struct PhaseProfile {
  double seconds[kPhaseCount] = {0, 0, 0, 0, 0, 0};

  void add(Phase phase, double s) noexcept {
    seconds[static_cast<int>(phase)] += s;
  }
  double operator[](Phase phase) const noexcept {
    return seconds[static_cast<int>(phase)];
  }
  void merge(const PhaseProfile& other) noexcept {
    for (int i = 0; i < kPhaseCount; ++i) {
      // Phase seconds are a scheduling-dependent timing side-channel,
      // never part of the gated estimates.
      // lint:allow(fp-merge) timing side-channel, not a gated estimate
      seconds[i] += other.seconds[i];
    }
  }
  double total() const noexcept {
    double sum = 0.0;
    for (int i = 0; i < kPhaseCount; ++i) {
      sum += seconds[i];
    }
    return sum;
  }
};

inline const char* to_string(Phase phase) noexcept {
  switch (phase) {
    case Phase::kWorldBuild:
      return "world_build";
    case Phase::kLifecycle:
      return "lifecycle";
    case Phase::kRefreshRepair:
      return "refresh_repair";
    case Phase::kRoute:
      return "route";
    case Phase::kMembershipCommit:
      return "commit";
    case Phase::kMerge:
      return "merge";
  }
  return "unknown";
}

/// Scoped phase timer.  With a null profile AND null trace the
/// constructor and destructor do nothing -- no clock read, no branch
/// beyond the null test -- which is the zero-cost disabled path every
/// engine ships by default.
class PhaseTimer {
 public:
  explicit PhaseTimer(PhaseProfile* profile, Phase phase,
                      Trace* trace = nullptr) noexcept
      : profile_(profile), trace_(trace), phase_(phase) {
    if (profile_ != nullptr || trace_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  ~PhaseTimer() { stop(); }

  /// Ends the scope early (idempotent); the destructor is then a no-op.
  void stop() noexcept {
    if (profile_ == nullptr && trace_ == nullptr) {
      return;
    }
    const auto end = std::chrono::steady_clock::now();
    if (profile_ != nullptr) {
      profile_->add(phase_,
                    std::chrono::duration<double>(end - start_).count());
    }
    if (trace_ != nullptr) {
      trace_->record(to_string(phase_), start_, end);
    }
    profile_ = nullptr;
    trace_ = nullptr;
  }

 private:
  PhaseProfile* profile_;
  Trace* trace_;
  Phase phase_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dht::obs
