// Chrome-trace (trace_event) timeline collector.
//
// One Trace instance per run collects named spans from every worker
// thread; write_chrome_trace() serializes them as the Chrome/Perfetto
// trace_event JSON array format -- open the file at ui.perfetto.dev (or
// chrome://tracing) to see one timeline lane per worker with the engine
// phases laid out.
//
// Lanes: each OS thread that records a span is assigned the next lane id
// on first contact (thread_local cache, mutex-ordered assignment), so a
// worker keeps one lane for the whole run.  Lane numbering therefore
// depends on scheduling -- which is fine, because traces are a timing
// side-channel exactly like PhaseProfile: never determinism-gated, never
// fed back into an engine.
//
// Cost model: recording takes the mutex once per span.  Spans are
// phase-scoped (a handful per shard per round), not per-route, so
// contention is negligible; with no Trace attached the PhaseTimer path
// never calls in here at all.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace dht::obs {

class Trace {
 public:
  struct Event {
    const char* name;          // static-storage phase name
    std::uint32_t lane;        // per-thread timeline lane
    std::uint64_t start_ns;    // offset from trace epoch
    std::uint64_t duration_ns;
  };

  Trace();

  /// Records one completed span from the calling thread.
  void record(const char* name, std::chrono::steady_clock::time_point start,
              std::chrono::steady_clock::time_point end);

  /// Snapshot of the events recorded so far (record order).
  std::vector<Event> events() const;

  /// Writes the Chrome trace_event JSON array ("ts"/"dur" in
  /// microseconds, one "tid" per worker lane) to `path`.  Returns false
  /// (and leaves no partial file behind beyond what the OS wrote) when
  /// the file cannot be opened.
  bool write_chrome_trace(const std::string& path) const;

 private:
  std::uint32_t lane_for_this_thread();

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::uint32_t next_lane_ = 0;
  std::vector<Event> events_;
};

}  // namespace dht::obs
