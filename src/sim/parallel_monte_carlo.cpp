#include "sim/parallel_monte_carlo.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "sim/flat_route.hpp"
#include "sim/shard_pool.hpp"

namespace dht::sim {

namespace {

inline RouteResult route_one(const flat::FlatCtx& c, const Router& router,
                             NodeId source, NodeId target, math::Rng& rng) {
  switch (c.kind) {
    case flat::KernelKind::kTree:
      return flat::route_tree(c, source, target);
    case flat::KernelKind::kXor:
      return flat::route_xor(c, source, target);
    case flat::KernelKind::kHypercube:
      return flat::route_hypercube(c, source, target, rng);
    case flat::KernelKind::kChordDeterministic:
      return flat::route_chord_deterministic(c, source, target);
    case flat::KernelKind::kChordRandomized:
      return flat::route_chord_randomized(c, source, target);
    case flat::KernelKind::kSymphony:
      return flat::route_symphony(c, source, target);
    case flat::KernelKind::kGeneric:
      break;
  }
  return router.route(source, target, rng);
}

constexpr int kLanes = 8;

// Interleaved shard loop: kLanes independent routes advance one hop per
// turn (struct-of-arrays state), so their table and liveness loads overlap
// in the memory pipeline instead of serializing on cache misses.  Each lane
// samples its pairs from its own counter-based stream
// (shard_rng.counter_stream(lane)), so lane draws are a pure function of
// (seed, shard, lane, draw index); the shared budget decides only how many
// pairs a lane gets, and that is deterministic too (the loop is
// single-threaded per shard, lanes serviced in lane order).  `step_lane`
// advances one route one hop and returns flat::kNoHop on a drop; the
// accounting below matches flat::route_stepped hop for hop, so estimates
// equal those of routing the same pairs one at a time.
template <typename StepLane>
void run_dense_lanes(const flat::FlatCtx& c, const FailureScenario& failures,
                     std::uint64_t pairs, const math::Rng& shard_rng,
                     RoutabilityEstimate& estimate, StepLane step_lane) {
  math::CounterRng pair_streams[kLanes];
  for (int l = 0; l < kLanes; ++l) {
    pair_streams[l] = shard_rng.counter_stream(static_cast<std::uint64_t>(l));
  }
  NodeId cur[kLanes];
  NodeId target[kLanes];
  std::uint32_t hops[kLanes];
  std::uint8_t active[kLanes];
  std::uint64_t remaining = pairs;
  int live = 0;
  const auto retire = [&](RouteStatus status, int l) {
    estimate.record(
        flat::finish(status, static_cast<int>(hops[l]), target[l]));
    if (remaining == 0) {
      active[l] = 0;
      --live;
      return;
    }
    --remaining;
    math::CounterRng& rng = pair_streams[l];
    const NodeId source = failures.sample_alive(rng);
    NodeId t = failures.sample_alive(rng);
    while (t == source) {
      t = failures.sample_alive(rng);
    }
    cur[l] = source;
    target[l] = t;
    hops[l] = 0;
  };
  for (int l = 0; l < kLanes; ++l) {
    active[l] = 0;
    if (remaining == 0) {
      continue;
    }
    --remaining;
    math::CounterRng& rng = pair_streams[l];
    const NodeId source = failures.sample_alive(rng);
    NodeId t = failures.sample_alive(rng);
    while (t == source) {
      t = failures.sample_alive(rng);
    }
    cur[l] = source;
    target[l] = t;
    hops[l] = 0;
    active[l] = 1;
    ++live;
  }
  while (live > 0) {
    for (int l = 0; l < kLanes; ++l) {
      if (!active[l]) {
        continue;
      }
      // A refilled pair is never terminal (source != target, 0 hops), so
      // one retire check per turn suffices and lanes never idle.
      if (cur[l] == flat::kNoHop) {
        retire(RouteStatus::kDropped, l);
      } else if (cur[l] == target[l]) {
        retire(RouteStatus::kArrived, l);
      } else if (hops[l] >= c.max_hops) {
        retire(RouteStatus::kHopLimit, l);
      }
    }
    if (live == 0) {
      break;
    }
    for (int l = 0; l < kLanes; ++l) {
      if (!active[l]) {
        continue;
      }
      const NodeId next = step_lane(l, cur[l], target[l]);
      if (next == flat::kNoHop) {
        cur[l] = flat::kNoHop;
      } else {
        cur[l] = next;
        ++hops[l];
      }
    }
  }
}

// One shard of the sampled estimator: dispatch to the kernel (or the
// virtual path) through the shared lane driver.  Hypercube hop draws come
// from dedicated per-lane counter streams (ids kLanes..2*kLanes-1, disjoint
// from the pair streams); the generic path's next_hop takes a sequential
// math::Rng, so each lane forks one -- rng-free rules consume neither, which
// is what keeps flat and generic runs bit-identical for them.
void run_dense_shard(const flat::FlatCtx& c, const Overlay& overlay,
                     const FailureScenario& failures, std::uint64_t pairs,
                     const math::Rng& shard_rng,
                     RoutabilityEstimate& estimate) {
  switch (c.kind) {
    case flat::KernelKind::kTree:
      run_dense_lanes(c, failures, pairs, shard_rng, estimate,
                      [&c](int, NodeId cur, NodeId target) {
                        return flat::step_tree(c, cur, target);
                      });
      return;
    case flat::KernelKind::kXor:
      run_dense_lanes(c, failures, pairs, shard_rng, estimate,
                      [&c](int, NodeId cur, NodeId target) {
                        return flat::step_xor(c, cur, target);
                      });
      return;
    case flat::KernelKind::kHypercube: {
      math::CounterRng hop_streams[kLanes];
      for (int l = 0; l < kLanes; ++l) {
        hop_streams[l] =
            shard_rng.counter_stream(static_cast<std::uint64_t>(kLanes + l));
      }
      run_dense_lanes(c, failures, pairs, shard_rng, estimate,
                      [&c, &hop_streams](int l, NodeId cur, NodeId target) {
                        return flat::step_hypercube(c, cur, target,
                                                    hop_streams[l]);
                      });
      return;
    }
    case flat::KernelKind::kChordDeterministic:
      run_dense_lanes(c, failures, pairs, shard_rng, estimate,
                      [&c](int, NodeId cur, NodeId target) {
                        return flat::step_chord_deterministic(c, cur, target);
                      });
      return;
    case flat::KernelKind::kChordRandomized:
      run_dense_lanes(c, failures, pairs, shard_rng, estimate,
                      [&c](int, NodeId cur, NodeId target) {
                        return flat::step_chord_randomized(c, cur, target);
                      });
      return;
    case flat::KernelKind::kSymphony:
      run_dense_lanes(c, failures, pairs, shard_rng, estimate,
                      [&c](int, NodeId cur, NodeId target) {
                        return flat::step_symphony(c, cur, target);
                      });
      return;
    case flat::KernelKind::kGeneric: {
      math::Rng lane_rngs[kLanes] = {
          shard_rng.fork(0), shard_rng.fork(1), shard_rng.fork(2),
          shard_rng.fork(3), shard_rng.fork(4), shard_rng.fork(5),
          shard_rng.fork(6), shard_rng.fork(7)};
      run_dense_lanes(
          c, failures, pairs, shard_rng, estimate,
          [&overlay, &failures, &lane_rngs](int l, NodeId cur, NodeId target) {
            const auto next =
                overlay.next_hop(cur, target, failures, lane_rngs[l]);
            return next.has_value() ? *next : flat::kNoHop;
          });
      return;
    }
  }
}

}  // namespace

RoutabilityEstimate estimate_routability_parallel(
    const Overlay& overlay, const FailureScenario& failures,
    const ParallelOptions& options, const math::Rng& rng) {
  DHT_CHECK(failures.alive_count() >= 2,
            "routability needs at least two alive nodes");
  DHT_CHECK(options.pairs > 0, "at least one pair must be sampled");
  // Observability is a timing side-channel: with both sinks null (the
  // default) every PhaseTimer below is constructed with null pointers and
  // reads no clock; the shard profiles are reduced in shard order like
  // every other per-shard result, and nothing here feeds back into the
  // estimates.
  const bool observed = options.profile != nullptr || options.trace != nullptr;
  obs::PhaseProfile serial_profile;
  obs::PhaseProfile* const serial =
      observed ? &serial_profile : nullptr;
  flat::FlatCtx ctx;
  {
    obs::PhaseTimer timer(serial, obs::Phase::kWorldBuild, options.trace);
    ctx = flat::make_ctx(overlay, failures, options.max_hops,
                         options.use_flat_kernels);
  }

  const std::uint64_t shards =
      options.shards != 0 ? options.shards
                          : std::min<std::uint64_t>(options.pairs, 256);
  const std::uint64_t base = options.pairs / shards;
  const std::uint64_t extra = options.pairs % shards;

  std::vector<RoutabilityEstimate> results(shards);
  std::vector<obs::PhaseProfile> shard_profiles(observed ? shards : 0);
  run_sharded(shards,
              PoolOptions{.threads = resolve_threads(options.threads),
                          .pin_workers = options.pin_workers},
              [&](std::uint64_t s) {
                // Shard s is a pure function of (caller seed, s): fork a
                // private lineage whose counter streams feed the lanes.
                obs::PhaseTimer timer(
                    observed ? &shard_profiles[s] : nullptr,
                    obs::Phase::kRoute, options.trace);
                const math::Rng shard_rng = rng.fork(s);
                const std::uint64_t pairs = base + (s < extra ? 1 : 0);
                RoutabilityEstimate estimate;
                run_dense_shard(ctx, overlay, failures, pairs, shard_rng,
                                estimate);
                results[s] = estimate;
              });

  RoutabilityEstimate merged;
  {
    obs::PhaseTimer timer(serial, obs::Phase::kMerge, options.trace);
    for (const RoutabilityEstimate& shard : results) {
      merged.merge(shard);
    }
  }
  if (options.profile != nullptr) {
    options.profile->merge(serial_profile);
    for (const obs::PhaseProfile& p : shard_profiles) {
      options.profile->merge(p);
    }
  }
  return merged;
}

RoutabilityEstimate exact_routability_parallel(
    const Overlay& overlay, const FailureScenario& failures,
    const ExactParallelOptions& options, const math::Rng& rng) {
  DHT_CHECK(failures.alive_count() >= 2,
            "routability needs at least two alive nodes");
  const Router router(overlay, failures, options.max_hops);
  const flat::FlatCtx ctx = flat::make_ctx(overlay, failures, options.max_hops,
                                           options.use_flat_kernels);

  const std::uint64_t size = failures.size();
  const std::uint64_t shards =
      options.shards != 0 ? std::min(options.shards, size)
                          : std::min<std::uint64_t>(size, 256);
  const std::uint64_t base = size / shards;
  const std::uint64_t extra = size % shards;

  std::vector<RoutabilityEstimate> results(shards);
  run_sharded(shards,
              PoolOptions{.threads = resolve_threads(options.threads),
                          .pin_workers = options.pin_workers},
              [&](std::uint64_t s) {
                // Shard s owns the contiguous source block [lo, hi).
                const std::uint64_t lo = s * base + std::min(s, extra);
                const std::uint64_t hi = lo + base + (s < extra ? 1 : 0);
                math::Rng shard_rng = rng.fork(s);
                RoutabilityEstimate estimate;
                for (NodeId source = lo; source < hi; ++source) {
                  if (!failures.alive(source)) {
                    continue;
                  }
                  for (NodeId target = 0; target < size; ++target) {
                    if (target == source || !failures.alive(target)) {
                      continue;
                    }
                    estimate.record(
                        route_one(ctx, router, source, target, shard_rng));
                  }
                }
                results[s] = estimate;
              });

  RoutabilityEstimate merged;
  for (const RoutabilityEstimate& shard : results) {
    merged.merge(shard);
  }
  return merged;
}

}  // namespace dht::sim
