#include "sim/parallel_monte_carlo.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "sim/flat_route.hpp"
#include "sim/shard_pool.hpp"

namespace dht::sim {

namespace {

inline RouteResult route_one(const flat::FlatCtx& c, const Router& router,
                             NodeId source, NodeId target, math::Rng& rng) {
  switch (c.kind) {
    case flat::KernelKind::kTree:
      return flat::route_tree(c, source, target);
    case flat::KernelKind::kXor:
      return flat::route_xor(c, source, target);
    case flat::KernelKind::kHypercube:
      return flat::route_hypercube(c, source, target, rng);
    case flat::KernelKind::kChordDeterministic:
      return flat::route_chord_deterministic(c, source, target);
    case flat::KernelKind::kChordRandomized:
      return flat::route_chord_randomized(c, source, target);
    case flat::KernelKind::kSymphony:
      return flat::route_symphony(c, source, target);
    case flat::KernelKind::kGeneric:
      break;
  }
  return router.route(source, target, rng);
}

}  // namespace

RoutabilityEstimate estimate_routability_parallel(
    const Overlay& overlay, const FailureScenario& failures,
    const ParallelOptions& options, const math::Rng& rng) {
  DHT_CHECK(failures.alive_count() >= 2,
            "routability needs at least two alive nodes");
  DHT_CHECK(options.pairs > 0, "at least one pair must be sampled");
  const Router router(overlay, failures, options.max_hops);
  const flat::FlatCtx ctx = flat::make_ctx(overlay, failures, options.max_hops,
                                           options.use_flat_kernels);

  const std::uint64_t shards =
      options.shards != 0 ? options.shards
                          : std::min<std::uint64_t>(options.pairs, 256);
  const std::uint64_t base = options.pairs / shards;
  const std::uint64_t extra = options.pairs % shards;

  std::vector<RoutabilityEstimate> results(shards);
  run_sharded(shards, resolve_threads(options.threads), [&](std::uint64_t s) {
    // Shard s is a pure function of (caller seed, s): fork a private
    // stream, sample its slice of the pair budget, route.
    math::Rng shard_rng = rng.fork(s);
    const std::uint64_t pairs = base + (s < extra ? 1 : 0);
    RoutabilityEstimate estimate;
    for (std::uint64_t i = 0; i < pairs; ++i) {
      const NodeId source = failures.sample_alive(shard_rng);
      NodeId target = failures.sample_alive(shard_rng);
      while (target == source) {
        target = failures.sample_alive(shard_rng);
      }
      estimate.record(route_one(ctx, router, source, target, shard_rng));
    }
    results[s] = estimate;
  });

  RoutabilityEstimate merged;
  for (const RoutabilityEstimate& shard : results) {
    merged.merge(shard);
  }
  return merged;
}

RoutabilityEstimate exact_routability_parallel(
    const Overlay& overlay, const FailureScenario& failures,
    const ExactParallelOptions& options, const math::Rng& rng) {
  DHT_CHECK(failures.alive_count() >= 2,
            "routability needs at least two alive nodes");
  const Router router(overlay, failures, options.max_hops);
  const flat::FlatCtx ctx = flat::make_ctx(overlay, failures, options.max_hops,
                                           options.use_flat_kernels);

  const std::uint64_t size = failures.size();
  const std::uint64_t shards =
      options.shards != 0 ? std::min(options.shards, size)
                          : std::min<std::uint64_t>(size, 256);
  const std::uint64_t base = size / shards;
  const std::uint64_t extra = size % shards;

  std::vector<RoutabilityEstimate> results(shards);
  run_sharded(shards, resolve_threads(options.threads), [&](std::uint64_t s) {
    // Shard s owns the contiguous source block [lo, hi).
    const std::uint64_t lo = s * base + std::min(s, extra);
    const std::uint64_t hi = lo + base + (s < extra ? 1 : 0);
    math::Rng shard_rng = rng.fork(s);
    RoutabilityEstimate estimate;
    for (NodeId source = lo; source < hi; ++source) {
      if (!failures.alive(source)) {
        continue;
      }
      for (NodeId target = 0; target < size; ++target) {
        if (target == source || !failures.alive(target)) {
          continue;
        }
        estimate.record(route_one(ctx, router, source, target, shard_rng));
      }
    }
    results[s] = estimate;
  });

  RoutabilityEstimate merged;
  for (const RoutabilityEstimate& shard : results) {
    merged.merge(shard);
  }
  return merged;
}

}  // namespace dht::sim
