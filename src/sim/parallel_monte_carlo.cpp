#include "sim/parallel_monte_carlo.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "sim/chord_overlay.hpp"
#include "sim/hypercube_overlay.hpp"
#include "sim/symphony_overlay.hpp"
#include "sim/tree_overlay.hpp"
#include "sim/xor_overlay.hpp"

namespace dht::sim {

namespace {

enum class KernelKind {
  kGeneric,
  kTree,
  kXor,
  kHypercube,
  kChordDeterministic,
  kChordRandomized,
  kSymphony,
};

// Flattened routing context: everything a kernel needs, as raw pointers and
// scalars.  Built once per engine invocation, read-only across threads.
struct FlatCtx {
  KernelKind kind = KernelKind::kGeneric;
  int d = 0;
  std::uint64_t mask = 0;
  const std::uint8_t* alive = nullptr;
  const std::uint32_t* table = nullptr;  // prefix entries / fingers / shortcuts
  int successor_links = 0;               // chord
  int kn = 0;                            // symphony near neighbors
  int ks = 0;                            // symphony shortcuts
  std::uint64_t max_hops = 0;
};

inline RouteResult finish(RouteStatus status, int hops, NodeId last) {
  RouteResult r;
  r.status = status;
  r.hops = hops;
  r.last_node = last;
  return r;
}

// Tree (Plaxton): the level-correcting neighbor is the only admissible hop.
RouteResult route_tree(const FlatCtx& c, NodeId source, NodeId target) {
  NodeId cur = source;
  int hops = 0;
  while (cur != target) {
    if (static_cast<std::uint64_t>(hops) >= c.max_hops) {
      return finish(RouteStatus::kHopLimit, hops, cur);
    }
    const std::uint64_t diff = cur ^ target;
    const NodeId cand = c.table[cur * static_cast<std::uint64_t>(c.d) +
                                static_cast<std::uint64_t>(c.d) -
                                static_cast<std::uint64_t>(std::bit_width(diff))];
    if (!c.alive[cand]) {
      return finish(RouteStatus::kDropped, hops, cur);
    }
    cur = cand;
    ++hops;
  }
  return finish(RouteStatus::kArrived, hops, cur);
}

// XOR (Kademlia): greedy, falling back down the differing levels.
RouteResult route_xor(const FlatCtx& c, NodeId source, NodeId target) {
  NodeId cur = source;
  int hops = 0;
  while (cur != target) {
    if (static_cast<std::uint64_t>(hops) >= c.max_hops) {
      return finish(RouteStatus::kHopLimit, hops, cur);
    }
    const std::uint32_t* row = c.table + cur * static_cast<std::uint64_t>(c.d);
    std::uint64_t diff = cur ^ target;
    NodeId next = 0;
    bool found = false;
    while (diff != 0) {
      const int bw = std::bit_width(diff);
      const NodeId cand = row[c.d - bw];
      if (c.alive[cand]) {
        next = cand;
        found = true;
        break;
      }
      diff &= ~(std::uint64_t{1} << (bw - 1));  // next differing bit down
    }
    if (!found) {
      return finish(RouteStatus::kDropped, hops, cur);
    }
    cur = next;
    ++hops;
  }
  return finish(RouteStatus::kArrived, hops, cur);
}

// Hypercube (CAN): uniform among alive bit-correcting neighbors.  Unlike
// HypercubeOverlay::next_hop's reservoir sampling (one rng draw per alive
// candidate), the kernel collects the alive candidate mask first and spends
// a single uniform_below per hop -- the same uniform choice, sampled along
// a different path, so hypercube results differ from the generic Router
// route-for-route while remaining deterministic and identically
// distributed.
RouteResult route_hypercube(const FlatCtx& c, NodeId source, NodeId target,
                            math::Rng& rng) {
  NodeId cur = source;
  int hops = 0;
  while (cur != target) {
    if (static_cast<std::uint64_t>(hops) >= c.max_hops) {
      return finish(RouteStatus::kHopLimit, hops, cur);
    }
    // Mask of differing bits whose flip lands on an alive node.
    std::uint64_t alive_mask = 0;
    std::uint64_t diff = cur ^ target;
    while (diff != 0) {
      const std::uint64_t lowest = diff & (~diff + 1);
      if (c.alive[cur ^ lowest]) {
        alive_mask |= lowest;
      }
      diff ^= lowest;
    }
    const int alive_candidates = std::popcount(alive_mask);
    if (alive_candidates == 0) {
      return finish(RouteStatus::kDropped, hops, cur);
    }
    // Pick the k-th set bit of the alive mask uniformly.
    std::uint64_t k =
        rng.uniform_below(static_cast<std::uint64_t>(alive_candidates));
    while (k > 0) {
      alive_mask &= alive_mask - 1;  // clear lowest set bit
      --k;
    }
    cur ^= alive_mask & (~alive_mask + 1);
    ++hops;
  }
  return finish(RouteStatus::kArrived, hops, cur);
}

// Chord successor-list fallback, shared by both finger variants: the
// farthest non-overshooting alive successor, but only when it outreaches
// the best alive finger.
inline bool chord_successor(const FlatCtx& c, NodeId cur,
                            std::uint64_t distance,
                            std::uint64_t best_progress, NodeId& out) {
  for (int k = c.successor_links; k > static_cast<int>(best_progress); --k) {
    if (static_cast<std::uint64_t>(k) > distance) {
      continue;  // overshoots
    }
    const NodeId succ = (cur + static_cast<std::uint64_t>(k)) & c.mask;
    if (c.alive[succ]) {
      out = succ;
      return true;
    }
  }
  return false;
}

// Chord with deterministic fingers: offsets are exactly the powers of two,
// so the greedy scan is pure bit arithmetic -- no table reads at all.
RouteResult route_chord_deterministic(const FlatCtx& c, NodeId source,
                                      NodeId target) {
  NodeId cur = source;
  int hops = 0;
  while (cur != target) {
    if (static_cast<std::uint64_t>(hops) >= c.max_hops) {
      return finish(RouteStatus::kHopLimit, hops, cur);
    }
    const std::uint64_t distance = (target - cur) & c.mask;
    std::uint64_t best_progress = 0;
    NodeId best = cur;
    // Largest power-of-two offset <= distance, then downward.
    for (int k = std::bit_width(distance) - 1; k >= 0; --k) {
      const NodeId f = (cur + (std::uint64_t{1} << k)) & c.mask;
      if (c.alive[f]) {
        best_progress = std::uint64_t{1} << k;
        best = f;
        break;
      }
    }
    NodeId next;
    if (!chord_successor(c, cur, distance, best_progress, next)) {
      if (best_progress == 0) {
        return finish(RouteStatus::kDropped, hops, cur);
      }
      next = best;
    }
    cur = next;
    ++hops;
  }
  return finish(RouteStatus::kArrived, hops, cur);
}

// Chord with randomized fingers: greedy scan over the node's contiguous
// finger row (dyadic intervals shrink with the index, so the first alive
// non-overshooting finger is the greedy choice).
RouteResult route_chord_randomized(const FlatCtx& c, NodeId source,
                                   NodeId target) {
  NodeId cur = source;
  int hops = 0;
  while (cur != target) {
    if (static_cast<std::uint64_t>(hops) >= c.max_hops) {
      return finish(RouteStatus::kHopLimit, hops, cur);
    }
    const std::uint64_t distance = (target - cur) & c.mask;
    const std::uint32_t* row = c.table + cur * static_cast<std::uint64_t>(c.d);
    std::uint64_t best_progress = 0;
    NodeId best = cur;
    for (int i = 0; i < c.d; ++i) {
      const NodeId f = row[i];
      const std::uint64_t progress = (f - cur) & c.mask;
      if (progress > distance) {
        continue;
      }
      if (c.alive[f]) {
        best_progress = progress;
        best = f;
        break;
      }
    }
    NodeId next;
    if (!chord_successor(c, cur, distance, best_progress, next)) {
      if (best_progress == 0) {
        return finish(RouteStatus::kDropped, hops, cur);
      }
      next = best;
    }
    cur = next;
    ++hops;
  }
  return finish(RouteStatus::kArrived, hops, cur);
}

// Symphony: greedy clockwise over shortcuts then near neighbors.
RouteResult route_symphony(const FlatCtx& c, NodeId source, NodeId target) {
  NodeId cur = source;
  int hops = 0;
  while (cur != target) {
    if (static_cast<std::uint64_t>(hops) >= c.max_hops) {
      return finish(RouteStatus::kHopLimit, hops, cur);
    }
    const std::uint64_t distance = (target - cur) & c.mask;
    std::uint64_t best_progress = 0;
    NodeId best = 0;
    const std::uint32_t* row = c.table + cur * static_cast<std::uint64_t>(c.ks);
    for (int j = 0; j < c.ks; ++j) {
      const NodeId link = row[j];
      const std::uint64_t progress = (link - cur) & c.mask;
      if (progress > distance || progress <= best_progress) {
        continue;
      }
      if (c.alive[link]) {
        best_progress = progress;
        best = link;
      }
    }
    for (int k = 1; k <= c.kn; ++k) {
      const std::uint64_t progress = static_cast<std::uint64_t>(k);
      if (progress > distance || progress <= best_progress) {
        continue;
      }
      const NodeId link = (cur + progress) & c.mask;
      if (c.alive[link]) {
        best_progress = progress;
        best = link;
      }
    }
    if (best_progress == 0) {
      return finish(RouteStatus::kDropped, hops, cur);
    }
    cur = best;
    ++hops;
  }
  return finish(RouteStatus::kArrived, hops, cur);
}

FlatCtx make_ctx(const Overlay& overlay, const FailureScenario& failures,
                 std::uint64_t max_hops, bool use_flat_kernels) {
  FlatCtx c;
  c.d = overlay.space().bits();
  c.mask = overlay.space().size() - 1;
  c.alive = failures.alive_data();
  c.max_hops = max_hops == 0 ? overlay.space().size() : max_hops;
  if (!use_flat_kernels) {
    return c;
  }
  if (const auto* tree = dynamic_cast<const TreeOverlay*>(&overlay)) {
    c.kind = KernelKind::kTree;
    c.table = tree->table()->entries().data();
  } else if (const auto* xr = dynamic_cast<const XorOverlay*>(&overlay)) {
    c.kind = KernelKind::kXor;
    c.table = xr->table()->entries().data();
  } else if (dynamic_cast<const HypercubeOverlay*>(&overlay) != nullptr) {
    c.kind = KernelKind::kHypercube;
  } else if (const auto* chord = dynamic_cast<const ChordOverlay*>(&overlay)) {
    c.successor_links = chord->successor_links();
    if (chord->finger_variant() == ChordFingers::kDeterministic) {
      c.kind = KernelKind::kChordDeterministic;
    } else {
      c.kind = KernelKind::kChordRandomized;
      c.table = chord->finger_table().data();
    }
  } else if (const auto* sym = dynamic_cast<const SymphonyOverlay*>(&overlay)) {
    c.kind = KernelKind::kSymphony;
    c.kn = sym->near_neighbors();
    c.ks = sym->shortcuts();
    c.table = sym->shortcut_table().data();
  }
  return c;
}

inline RouteResult route_one(const FlatCtx& c, const Router& router,
                             NodeId source, NodeId target, math::Rng& rng) {
  switch (c.kind) {
    case KernelKind::kTree:
      return route_tree(c, source, target);
    case KernelKind::kXor:
      return route_xor(c, source, target);
    case KernelKind::kHypercube:
      return route_hypercube(c, source, target, rng);
    case KernelKind::kChordDeterministic:
      return route_chord_deterministic(c, source, target);
    case KernelKind::kChordRandomized:
      return route_chord_randomized(c, source, target);
    case KernelKind::kSymphony:
      return route_symphony(c, source, target);
    case KernelKind::kGeneric:
      break;
  }
  return router.route(source, target, rng);
}

/// Runs `work(shard_index)` for every shard on `threads` workers pulling
/// from an atomic counter; rethrows the first worker exception.
template <typename Work>
void run_sharded(std::uint64_t shards, unsigned threads, Work&& work) {
  if (threads <= 1 || shards <= 1) {
    for (std::uint64_t s = 0; s < shards; ++s) {
      work(s);
    }
    return;
  }
  std::atomic<std::uint64_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;
  const unsigned workers =
      static_cast<unsigned>(std::min<std::uint64_t>(threads, shards));
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::uint64_t s = next.fetch_add(1, std::memory_order_relaxed);
        if (s >= shards || failed.load(std::memory_order_relaxed)) {
          return;
        }
        try {
          work(s);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) {
            error = std::current_exception();
          }
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (std::thread& t : pool) {
    t.join();
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

RoutabilityEstimate estimate_routability_parallel(
    const Overlay& overlay, const FailureScenario& failures,
    const ParallelOptions& options, const math::Rng& rng) {
  DHT_CHECK(failures.alive_count() >= 2,
            "routability needs at least two alive nodes");
  DHT_CHECK(options.pairs > 0, "at least one pair must be sampled");
  const Router router(overlay, failures, options.max_hops);
  const FlatCtx ctx = make_ctx(overlay, failures, options.max_hops,
                               options.use_flat_kernels);

  const std::uint64_t shards =
      options.shards != 0 ? options.shards
                          : std::min<std::uint64_t>(options.pairs, 256);
  const std::uint64_t base = options.pairs / shards;
  const std::uint64_t extra = options.pairs % shards;

  std::vector<RoutabilityEstimate> results(shards);
  run_sharded(shards, resolve_threads(options.threads), [&](std::uint64_t s) {
    // Shard s is a pure function of (caller seed, s): fork a private
    // stream, sample its slice of the pair budget, route.
    math::Rng shard_rng = rng.fork(s);
    const std::uint64_t pairs = base + (s < extra ? 1 : 0);
    RoutabilityEstimate estimate;
    for (std::uint64_t i = 0; i < pairs; ++i) {
      const NodeId source = failures.sample_alive(shard_rng);
      NodeId target = failures.sample_alive(shard_rng);
      while (target == source) {
        target = failures.sample_alive(shard_rng);
      }
      estimate.record(route_one(ctx, router, source, target, shard_rng));
    }
    results[s] = estimate;
  });

  RoutabilityEstimate merged;
  for (const RoutabilityEstimate& shard : results) {
    merged.merge(shard);
  }
  return merged;
}

RoutabilityEstimate exact_routability_parallel(
    const Overlay& overlay, const FailureScenario& failures,
    const ExactParallelOptions& options, const math::Rng& rng) {
  DHT_CHECK(failures.alive_count() >= 2,
            "routability needs at least two alive nodes");
  const Router router(overlay, failures, options.max_hops);
  const FlatCtx ctx = make_ctx(overlay, failures, options.max_hops,
                               options.use_flat_kernels);

  const std::uint64_t size = failures.size();
  const std::uint64_t shards =
      options.shards != 0 ? std::min(options.shards, size)
                          : std::min<std::uint64_t>(size, 256);
  const std::uint64_t base = size / shards;
  const std::uint64_t extra = size % shards;

  std::vector<RoutabilityEstimate> results(shards);
  run_sharded(shards, resolve_threads(options.threads), [&](std::uint64_t s) {
    // Shard s owns the contiguous source block [lo, hi).
    const std::uint64_t lo = s * base + std::min(s, extra);
    const std::uint64_t hi = lo + base + (s < extra ? 1 : 0);
    math::Rng shard_rng = rng.fork(s);
    RoutabilityEstimate estimate;
    for (NodeId source = lo; source < hi; ++source) {
      if (!failures.alive(source)) {
        continue;
      }
      for (NodeId target = 0; target < size; ++target) {
        if (target == source || !failures.alive(target)) {
          continue;
        }
        estimate.record(route_one(ctx, router, source, target, shard_rng));
      }
    }
    results[s] = estimate;
  });

  RoutabilityEstimate merged;
  for (const RoutabilityEstimate& shard : results) {
    merged.merge(shard);
  }
  return merged;
}

}  // namespace dht::sim
