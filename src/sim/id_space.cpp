#include "sim/id_space.hpp"

#include "common/check.hpp"

namespace dht::sim {

IdSpace::IdSpace(int d) : d_(d) {
  DHT_CHECK(d >= 1 && d <= 26, "IdSpace supports 1 <= d <= 26");
}

}  // namespace dht::sim
