#include "sim/prefix_table.hpp"

#include "common/check.hpp"

namespace dht::sim {

PrefixTable::PrefixTable(const IdSpace& space, math::Rng& rng)
    : d_(space.bits()), size_(space.size()) {
  entries_.resize(size_ * static_cast<std::uint64_t>(d_));
  for (NodeId v = 0; v < size_; ++v) {
    for (int level = 1; level <= d_; ++level) {
      // Keep the first level-1 bits, flip bit `level`, randomize the rest.
      const int suffix_bits = d_ - level;
      const NodeId kept = flip_level(v, level, d_) >> suffix_bits
                                                          << suffix_bits;
      const NodeId suffix =
          suffix_bits == 0
              ? 0
              : rng.uniform_below(std::uint64_t{1} << suffix_bits);
      entries_[v * static_cast<std::uint64_t>(d_) +
               static_cast<std::uint64_t>(level - 1)] =
          static_cast<std::uint32_t>(kept | suffix);
    }
  }
}

PrefixTable::PrefixTable(const IdSpace& space,
                         std::vector<std::uint32_t> entries)
    : d_(space.bits()), size_(space.size()), entries_(std::move(entries)) {
  DHT_CHECK(entries_.size() == size_ * static_cast<std::uint64_t>(d_),
            "entry count must be N * d");
  for (NodeId v = 0; v < size_; ++v) {
    for (int level = 1; level <= d_; ++level) {
      const NodeId entry = entries_[v * static_cast<std::uint64_t>(d_) +
                                    static_cast<std::uint64_t>(level - 1)];
      DHT_CHECK(entry < size_, "entry out of the id space");
      DHT_CHECK(shares_prefix(v, entry, level - 1, d_) &&
                    bit_at_level(v, level, d_) !=
                        bit_at_level(entry, level, d_),
                "entry violates its (prefix, flipped-bit) class");
    }
  }
}

NodeId PrefixTable::neighbor(NodeId node, int level) const {
  DHT_CHECK(node < size_, "node id out of range");
  DHT_CHECK(level >= 1 && level <= d_, "level out of range");
  return entries_[node * static_cast<std::uint64_t>(d_) +
                  static_cast<std::uint64_t>(level - 1)];
}

}  // namespace dht::sim
