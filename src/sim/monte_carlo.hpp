// The static-resilience experiment of Gummadi et al. [2], re-implemented.
//
// Sample ordered pairs of *alive* nodes, route between them under the basic
// protocol, and report the failed-path fraction -- the quantity plotted in
// the paper's Fig. 6 against the RCM prediction.  Also provides the exact
// (all-alive-pairs) variant for small spaces, which removes sampling noise
// from tests.
//
// The parallel engine (parallel_monte_carlo.hpp) shards the same experiment
// across threads; RoutabilityEstimate therefore accumulates hop statistics
// in exact integer counters, so that merging per-shard estimates in shard
// order is associative and bit-identical to a single sequential pass.
#pragma once

#include <cstdint>

#include "math/stats.hpp"
#include "obs/failure.hpp"
#include "sim/hop_stats.hpp"
#include "sim/overlay.hpp"
#include "sim/router.hpp"

namespace dht::sim {

struct EstimateOptions {
  /// Number of ordered (source, target) pairs to sample.
  std::uint64_t pairs = 20000;
  /// Safety hop cap forwarded to the Router (0 = default N).
  std::uint64_t max_hops = 0;
};

/// Aggregated routability measurement.
struct RoutabilityEstimate {
  math::Proportion routed;  ///< successes over attempted pairs
  HopStats hops;            ///< hop counts of successful routes
  /// Per-cause failure counters (obs/failure.hpp); the former
  /// hop_limit_hits canary is the kHopLimit cell (accessor below).
  /// Conservation: routed.trials == hops.count() + failures.total().
  obs::FailureTaxonomy failures;

  /// Folds one route outcome into the estimate.  Drops in the dense
  /// engines are always dead-entry stalls (the static forwarding rules
  /// have no other way to fail short of the hop cap).
  void record(const RouteResult& result) noexcept {
    routed.record(result.success());
    if (result.success()) {
      hops.add(static_cast<std::uint64_t>(result.hops));
    } else if (result.status == RouteStatus::kHopLimit) {
      failures.record(obs::RouteFailure::kHopLimit);
    } else {
      failures.record(obs::RouteFailure::kDeadEntry);
    }
  }

  /// The historical protocol-bug canary, preserved as an accessor over
  /// the taxonomy (should stay 0).
  std::uint64_t hop_limit_hits() const noexcept {
    return failures[obs::RouteFailure::kHopLimit];
  }

  /// Pools another estimate (e.g. a shard's) into this one.  All counters
  /// are integers, so merging shards in a fixed order is bit-identical to a
  /// single pass over the concatenated routes.
  void merge(const RoutabilityEstimate& other) noexcept {
    routed.merge(other.routed);
    hops.merge(other.hops);
    failures.merge(other.failures);
  }

  double routability() const noexcept { return routed.point(); }
  double failed_fraction() const noexcept { return 1.0 - routed.point(); }
  /// 95% Wilson interval on the routability; the vacuous [0, 1] when no
  /// pairs were sampled (ChurnWorld::measure returns an empty estimate
  /// when fewer than two nodes are alive, and downstream reporting must
  /// not trip Wilson's trials > 0 precondition on a collapsed world).
  math::Interval confidence95() const {
    return routed.trials == 0 ? math::Interval{} : routed.wilson(1.96);
  }
};

/// Monte-Carlo estimate over sampled alive pairs.  Preconditions: at least
/// two alive nodes.
RoutabilityEstimate estimate_routability(const Overlay& overlay,
                                         const FailureScenario& failures,
                                         const EstimateOptions& options,
                                         math::Rng& rng);

/// Exact measurement over every ordered pair of alive nodes; O(N^2 * hops),
/// intended for spaces up to ~2^10.
RoutabilityEstimate exact_routability(const Overlay& overlay,
                                      const FailureScenario& failures,
                                      math::Rng& rng);

}  // namespace dht::sim
