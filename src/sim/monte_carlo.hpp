// The static-resilience experiment of Gummadi et al. [2], re-implemented.
//
// Sample ordered pairs of *alive* nodes, route between them under the basic
// protocol, and report the failed-path fraction -- the quantity plotted in
// the paper's Fig. 6 against the RCM prediction.  Also provides the exact
// (all-alive-pairs) variant for small spaces, which removes sampling noise
// from tests.
//
// The parallel engine (parallel_monte_carlo.hpp) shards the same experiment
// across threads; RoutabilityEstimate therefore accumulates hop statistics
// in exact integer counters, so that merging per-shard estimates in shard
// order is associative and bit-identical to a single sequential pass.
#pragma once

#include <cstdint>

#include "math/stats.hpp"
#include "sim/overlay.hpp"
#include "sim/router.hpp"

namespace dht::sim {

struct EstimateOptions {
  /// Number of ordered (source, target) pairs to sample.
  std::uint64_t pairs = 20000;
  /// Safety hop cap forwarded to the Router (0 = default N).
  std::uint64_t max_hops = 0;
};

/// Hop-count accumulator with exact integer state.  Unlike a floating-point
/// Welford accumulator, merging two HopStats is associative and commutative
/// bit-for-bit, which is what makes the sharded Monte-Carlo engine
/// reproducible independent of thread count.  Sums are u64: routes are
/// bounded by N - 1 < 2^26 hops, so overflow needs > 2^38 recorded routes
/// even at the worst-case hop count.
class HopStats {
 public:
  void add(std::uint64_t hops) noexcept {
    ++count_;
    sum_ += hops;
    sum_sq_ += hops * hops;
    if (count_ == 1 || hops < min_) {
      min_ = hops;
    }
    if (count_ == 1 || hops > max_) {
      max_ = hops;
    }
  }

  /// Folds another accumulator into this one; exact.
  void merge(const HopStats& other) noexcept {
    if (other.count_ == 0) {
      return;
    }
    if (count_ == 0 || other.min_ < min_) {
      min_ = other.min_;
    }
    if (count_ == 0 || other.max_ > max_) {
      max_ = other.max_;
    }
    count_ += other.count_;
    sum_ += other.sum_;
    sum_sq_ += other.sum_sq_;
  }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t sum_squares() const noexcept { return sum_sq_; }
  std::uint64_t min() const noexcept { return min_; }
  std::uint64_t max() const noexcept { return max_; }

  double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t sum_sq_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Aggregated routability measurement.
struct RoutabilityEstimate {
  math::Proportion routed;        ///< successes over attempted pairs
  HopStats hops;                  ///< hop counts of successful routes
  std::uint64_t hop_limit_hits = 0;  ///< should stay 0; protocol-bug canary

  /// Folds one route outcome into the estimate.
  void record(const RouteResult& result) noexcept {
    routed.record(result.success());
    if (result.success()) {
      hops.add(static_cast<std::uint64_t>(result.hops));
    } else if (result.status == RouteStatus::kHopLimit) {
      ++hop_limit_hits;
    }
  }

  /// Pools another estimate (e.g. a shard's) into this one.  All counters
  /// are integers, so merging shards in a fixed order is bit-identical to a
  /// single pass over the concatenated routes.
  void merge(const RoutabilityEstimate& other) noexcept {
    routed.merge(other.routed);
    hops.merge(other.hops);
    hop_limit_hits += other.hop_limit_hits;
  }

  double routability() const noexcept { return routed.point(); }
  double failed_fraction() const noexcept { return 1.0 - routed.point(); }
  /// 95% Wilson interval on the routability.
  math::Interval confidence95() const { return routed.wilson(1.96); }
};

/// Monte-Carlo estimate over sampled alive pairs.  Preconditions: at least
/// two alive nodes.
RoutabilityEstimate estimate_routability(const Overlay& overlay,
                                         const FailureScenario& failures,
                                         const EstimateOptions& options,
                                         math::Rng& rng);

/// Exact measurement over every ordered pair of alive nodes; O(N^2 * hops),
/// intended for spaces up to ~2^10.
RoutabilityEstimate exact_routability(const Overlay& overlay,
                                      const FailureScenario& failures,
                                      math::Rng& rng);

}  // namespace dht::sim
