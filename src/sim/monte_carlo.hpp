// The static-resilience experiment of Gummadi et al. [2], re-implemented.
//
// Sample ordered pairs of *alive* nodes, route between them under the basic
// protocol, and report the failed-path fraction -- the quantity plotted in
// the paper's Fig. 6 against the RCM prediction.  Also provides the exact
// (all-alive-pairs) variant for small spaces, which removes sampling noise
// from tests.
#pragma once

#include <cstdint>

#include "math/stats.hpp"
#include "sim/overlay.hpp"
#include "sim/router.hpp"

namespace dht::sim {

struct EstimateOptions {
  /// Number of ordered (source, target) pairs to sample.
  std::uint64_t pairs = 20000;
  /// Safety hop cap forwarded to the Router (0 = default N).
  std::uint64_t max_hops = 0;
};

/// Aggregated routability measurement.
struct RoutabilityEstimate {
  math::Proportion routed;        ///< successes over attempted pairs
  math::RunningStat hops;         ///< hop counts of successful routes
  std::uint64_t hop_limit_hits = 0;  ///< should stay 0; protocol-bug canary

  double routability() const noexcept { return routed.point(); }
  double failed_fraction() const noexcept { return 1.0 - routed.point(); }
  /// 95% Wilson interval on the routability.
  math::Interval confidence95() const { return routed.wilson(1.96); }
};

/// Monte-Carlo estimate over sampled alive pairs.  Preconditions: at least
/// two alive nodes.
RoutabilityEstimate estimate_routability(const Overlay& overlay,
                                         const FailureScenario& failures,
                                         const EstimateOptions& options,
                                         math::Rng& rng);

/// Exact measurement over every ordered pair of alive nodes; O(N^2 * hops),
/// intended for spaces up to ~2^10.
RoutabilityEstimate exact_routability(const Overlay& overlay,
                                      const FailureScenario& failures,
                                      math::Rng& rng);

}  // namespace dht::sim
