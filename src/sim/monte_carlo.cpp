#include "sim/monte_carlo.hpp"

#include "common/check.hpp"

namespace dht::sim {

RoutabilityEstimate estimate_routability(const Overlay& overlay,
                                         const FailureScenario& failures,
                                         const EstimateOptions& options,
                                         math::Rng& rng) {
  DHT_CHECK(failures.alive_count() >= 2,
            "routability needs at least two alive nodes");
  DHT_CHECK(options.pairs > 0, "at least one pair must be sampled");
  const Router router(overlay, failures, options.max_hops);
  RoutabilityEstimate estimate;
  for (std::uint64_t i = 0; i < options.pairs; ++i) {
    const NodeId source = failures.sample_alive(rng);
    NodeId target = failures.sample_alive(rng);
    while (target == source) {
      target = failures.sample_alive(rng);
    }
    estimate.record(router.route(source, target, rng));
  }
  return estimate;
}

RoutabilityEstimate exact_routability(const Overlay& overlay,
                                      const FailureScenario& failures,
                                      math::Rng& rng) {
  DHT_CHECK(failures.alive_count() >= 2,
            "routability needs at least two alive nodes");
  const Router router(overlay, failures);
  RoutabilityEstimate estimate;
  const std::uint64_t size = failures.size();
  for (NodeId source = 0; source < size; ++source) {
    if (!failures.alive(source)) {
      continue;
    }
    for (NodeId target = 0; target < size; ++target) {
      if (target == source || !failures.alive(target)) {
        continue;
      }
      estimate.record(router.route(source, target, rng));
    }
  }
  return estimate;
}

}  // namespace dht::sim
