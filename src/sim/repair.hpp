// The static-repair model: between "static resilience" and full recovery.
//
// The paper's Section 1 motivates the static failure model by the time-scale
// gap: "very fast detection of faults is generally possible ... but
// establishing new connections to replace the faulty nodes is more time and
// resource consuming".  This module interpolates between the two regimes
// for the prefix-table geometries (tree/XOR): after the failures land, each
// dead routing-table entry is independently repaired with probability
// `repair_probability`, i.e. re-pointed at a uniformly random *alive* member
// of the same (prefix, flipped-bit) class.  rho = 0 reproduces the paper's
// static model; rho = 1 models a fully converged repair protocol, whose
// only residual losses are classes with no alive member (the level-d class
// has a single candidate, so the deepest entries stay irreparable).
//
// Analytically, an entry at level i survives with probability
//   1 - q_eff(i),  q_eff(i) = q (1 - rho (1 - q^{2^{d-i} - 1})),
// which reduces to q (1 - rho) when the class is large -- the reference
// curve the ext_static_repair benchmark prints.
#pragma once

#include <memory>

#include "math/rng.hpp"
#include "sim/failure.hpp"
#include "sim/prefix_table.hpp"

namespace dht::sim {

/// Returns a repaired copy of `table`: each entry that is dead under
/// `failures` is independently re-drawn, with probability
/// `repair_probability`, uniformly among the alive members of its class;
/// entries whose class has no alive member are left as they are.
/// Preconditions: repair_probability in [0, 1]; table/failures sized to
/// `space`.
std::shared_ptr<const PrefixTable> repair_prefix_table(
    const PrefixTable& table, const IdSpace& space,
    const FailureScenario& failures, double repair_probability,
    math::Rng& rng);

/// Forkable-stream variant for sharded trajectories: draws from
/// `rng.fork(stream_id)` instead of advancing the caller's generator, so
/// the repaired table is a pure function of (rng lineage, stream_id) --
/// shard k of a sweep can repair its own table from stream k without
/// coordinating with other shards.  Same preconditions and semantics as
/// the mutable-rng overload.
std::shared_ptr<const PrefixTable> repair_prefix_table(
    const PrefixTable& table, const IdSpace& space,
    const FailureScenario& failures, double repair_probability,
    const math::Rng& rng, std::uint64_t stream_id);

}  // namespace dht::sim
