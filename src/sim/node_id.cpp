#include "sim/node_id.hpp"

#include <bit>

#include "common/check.hpp"

namespace dht::sim {

namespace {

void check_level(int level, int d) {
  DHT_CHECK(d >= 1 && d <= 63, "identifier length d must be in [1, 63]");
  DHT_CHECK(level >= 1 && level <= d, "level must be in [1, d]");
}

void check_id(NodeId id, int d) {
  DHT_CHECK(d >= 1 && d <= 63, "identifier length d must be in [1, 63]");
  DHT_CHECK(id < (NodeId{1} << d), "node id does not fit in d bits");
}

}  // namespace

int hamming_distance(NodeId a, NodeId b) noexcept {
  return std::popcount(a ^ b);
}

std::uint64_t xor_distance(NodeId a, NodeId b) noexcept { return a ^ b; }

int msb_diff_level(NodeId a, NodeId b, int d) {
  check_id(a, d);
  check_id(b, d);
  const NodeId x = a ^ b;
  if (x == 0) {
    return 0;
  }
  // bit_width gives the position of the highest set bit counted from the
  // LSB (1-based); converting to a 1-based level from the MSB of d bits.
  return d - std::bit_width(x) + 1;
}

std::uint64_t ring_distance(NodeId a, NodeId b, int d) {
  check_id(a, d);
  check_id(b, d);
  const NodeId size = NodeId{1} << d;
  return (b - a) & (size - 1);
}

bool bit_at_level(NodeId id, int level, int d) {
  check_level(level, d);
  check_id(id, d);
  return ((id >> (d - level)) & 1U) != 0;
}

NodeId flip_level(NodeId id, int level, int d) {
  check_level(level, d);
  check_id(id, d);
  return id ^ (NodeId{1} << (d - level));
}

bool shares_prefix(NodeId a, NodeId b, int levels, int d) {
  DHT_CHECK(levels >= 0 && levels <= d, "prefix length must be in [0, d]");
  check_id(a, d);
  check_id(b, d);
  if (levels == 0) {
    return true;
  }
  return ((a ^ b) >> (d - levels)) == 0;
}

int phase_of_distance(std::uint64_t dist) {
  DHT_CHECK(dist >= 1, "phase is defined for positive distances");
  return std::bit_width(dist);
}

}  // namespace dht::sim
