#include "sim/tree_overlay.hpp"

#include "common/check.hpp"

namespace dht::sim {

TreeOverlay::TreeOverlay(const IdSpace& space, math::Rng& rng)
    : space_(space), table_(std::make_shared<PrefixTable>(space, rng)) {}

TreeOverlay::TreeOverlay(const IdSpace& space,
                         std::shared_ptr<const PrefixTable> table)
    : space_(space), table_(std::move(table)) {
  DHT_CHECK(table_ != nullptr, "TreeOverlay requires a table");
  DHT_CHECK(table_->levels() == space_.bits(),
            "table level count must match the id space");
}

std::optional<NodeId> TreeOverlay::next_hop(NodeId current, NodeId target,
                                            const FailureScenario& failures,
                                            math::Rng& /*rng*/) const {
  DHT_CHECK(current != target, "next_hop requires current != target");
  const int level = msb_diff_level(current, target, space_.bits());
  const NodeId candidate = table_->neighbor(current, level);
  if (!failures.alive(candidate)) {
    return std::nullopt;  // the only admissible neighbor is dead
  }
  return candidate;
}

void TreeOverlay::links_into(NodeId node, std::vector<NodeId>& out) const {
  out.clear();
  const int d = space_.bits();
  const std::uint32_t* row =
      table_->entries().data() + node * static_cast<std::uint64_t>(d);
  for (int i = 0; i < d; ++i) {
    out.push_back(row[i]);
  }
}

std::vector<NodeId> TreeOverlay::links(NodeId node) const {
  std::vector<NodeId> out;
  out.reserve(static_cast<size_t>(space_.bits()));
  links_into(node, out);
  return out;
}

}  // namespace dht::sim
