#include "sim/tree_overlay.hpp"

#include "common/check.hpp"

namespace dht::sim {

TreeOverlay::TreeOverlay(const IdSpace& space, math::Rng& rng)
    : space_(space), table_(std::make_shared<PrefixTable>(space, rng)) {}

TreeOverlay::TreeOverlay(const IdSpace& space,
                         std::shared_ptr<const PrefixTable> table)
    : space_(space), table_(std::move(table)) {
  DHT_CHECK(table_ != nullptr, "TreeOverlay requires a table");
  DHT_CHECK(table_->levels() == space_.bits(),
            "table level count must match the id space");
}

std::optional<NodeId> TreeOverlay::next_hop(NodeId current, NodeId target,
                                            const FailureScenario& failures,
                                            math::Rng& /*rng*/) const {
  DHT_CHECK(current != target, "next_hop requires current != target");
  const int level = msb_diff_level(current, target, space_.bits());
  const NodeId candidate = table_->neighbor(current, level);
  if (!failures.alive(candidate)) {
    return std::nullopt;  // the only admissible neighbor is dead
  }
  return candidate;
}

std::vector<NodeId> TreeOverlay::links(NodeId node) const {
  std::vector<NodeId> out;
  out.reserve(static_cast<size_t>(space_.bits()));
  for (int level = 1; level <= space_.bits(); ++level) {
    out.push_back(table_->neighbor(node, level));
  }
  return out;
}

}  // namespace dht::sim
