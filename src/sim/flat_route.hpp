// Flattened per-geometry routing kernels.
//
// One tight loop per overlay family reading a contiguous neighbor table
// (PrefixTable entries, materialized Chord fingers, Symphony shortcut rows)
// and a raw liveness mask directly -- no virtual dispatch, no
// std::optional, no precondition re-checks per hop.  Kernels are exact
// replicas of the corresponding Overlay::next_hop rules (property-tested in
// test_flat_paths / test_parallel_monte_carlo).
//
// Shared by the static parallel Monte-Carlo engine
// (parallel_monte_carlo.cpp), which builds a FlatCtx over an immutable
// overlay + FailureScenario, and by the churn trajectory engine
// (churn/trajectory.cpp), which points the same kernels at the liveness
// and table state a shard evolves round by round.
#pragma once

#include <bit>
#include <cstdint>

#if defined(__BMI2__)
#include <immintrin.h>
#endif

#include "math/rng.hpp"
#include "sim/router.hpp"

namespace dht::sim {

class Overlay;
class FailureScenario;

namespace flat {

enum class KernelKind {
  kGeneric,
  kTree,
  kXor,
  kHypercube,
  kChordDeterministic,
  kChordRandomized,
  kSymphony,
};

// Flattened routing context: everything a kernel needs, as raw pointers and
// scalars.  Built once per engine invocation (or once per trajectory round),
// read-only across threads.
struct FlatCtx {
  KernelKind kind = KernelKind::kGeneric;
  int d = 0;
  std::uint64_t mask = 0;
  const std::uint8_t* alive = nullptr;
  const std::uint32_t* table = nullptr;  // prefix entries / fingers / shortcuts
  int successor_links = 0;               // chord
  int kn = 0;                            // symphony near neighbors
  int ks = 0;                            // symphony shortcuts
  std::uint64_t max_hops = 0;
};

inline RouteResult finish(RouteStatus status, int hops, NodeId last) {
  RouteResult r;
  r.status = status;
  r.hops = hops;
  r.last_node = last;
  return r;
}

/// Drop sentinel returned by the per-hop step functions below.  NodeId is
/// 64-bit while identifiers live in a 2^d space with d < 64, so the
/// all-ones value can never name a real node.
inline constexpr NodeId kNoHop = ~NodeId{0};

/// The shared whole-route driver: iterates a per-hop step function until
/// arrival, drop (step returns kNoHop), or the hop cap -- the same
/// accounting as sparse::flat::route_flat.  The batched estimator
/// (parallel_monte_carlo.cpp) applies the identical accounting to
/// interleaved routes via the same step functions.
template <typename Step>
RouteResult route_stepped(const FlatCtx& c, NodeId source, NodeId target,
                          Step step) {
  NodeId cur = source;
  int hops = 0;
  while (cur != target) {
    if (static_cast<std::uint64_t>(hops) >= c.max_hops) {
      return finish(RouteStatus::kHopLimit, hops, cur);
    }
    const NodeId next = step(c, cur, target);
    if (next == kNoHop) {
      return finish(RouteStatus::kDropped, hops, cur);
    }
    cur = next;
    ++hops;
  }
  return finish(RouteStatus::kArrived, hops, cur);
}

// Tree (Plaxton): the level-correcting neighbor is the only admissible hop.
/// One forwarding step; kNoHop when the protocol drops the message.
inline NodeId step_tree(const FlatCtx& c, NodeId cur, NodeId target) {
  const std::uint64_t diff = cur ^ target;
  const NodeId cand = c.table[cur * static_cast<std::uint64_t>(c.d) +
                              static_cast<std::uint64_t>(c.d) -
                              static_cast<std::uint64_t>(std::bit_width(diff))];
  return c.alive[cand] ? cand : kNoHop;
}

inline RouteResult route_tree(const FlatCtx& c, NodeId source, NodeId target) {
  return route_stepped(c, source, target,
                       [](const FlatCtx& ctx, NodeId cur, NodeId tgt) {
                         return step_tree(ctx, cur, tgt);
                       });
}

// XOR (Kademlia): greedy, falling back down the differing levels.
/// One forwarding step; kNoHop when the protocol drops the message.
inline NodeId step_xor(const FlatCtx& c, NodeId cur, NodeId target) {
  const std::uint32_t* row = c.table + cur * static_cast<std::uint64_t>(c.d);
  std::uint64_t diff = cur ^ target;
  while (diff != 0) {
    const int bw = std::bit_width(diff);
    const NodeId cand = row[c.d - bw];
    if (c.alive[cand]) {
      return cand;
    }
    diff &= ~(std::uint64_t{1} << (bw - 1));  // next differing bit down
  }
  return kNoHop;
}

inline RouteResult route_xor(const FlatCtx& c, NodeId source, NodeId target) {
  return route_stepped(c, source, target,
                       [](const FlatCtx& ctx, NodeId cur, NodeId tgt) {
                         return step_xor(ctx, cur, tgt);
                       });
}

// Hypercube (CAN): uniform among alive bit-correcting neighbors.  Unlike
// HypercubeOverlay::next_hop's reservoir sampling (one rng draw per alive
// candidate), the kernel collects the alive candidate mask first and spends
// at most one uniform_below per hop -- the same uniform choice, sampled
// along a different path, so hypercube results differ from the generic
// Router route-for-route while remaining deterministic and identically
// distributed.  The mask is accumulated branchlessly from the liveness
// bytes (batched alive lookups, no per-candidate branch), a lone candidate
// is taken without burning a draw (a 1-way uniform choice is
// deterministic), and the k-th set bit is selected with pdep where BMI2 is
// available.
/// One forwarding step; kNoHop when the protocol drops the message.
/// Templated on the generator so both the sequential engines (math::Rng)
/// and the per-lane counter streams of the batched estimator
/// (math::CounterRng) can drive it.
template <typename Generator>
inline NodeId step_hypercube(const FlatCtx& c, NodeId cur, NodeId target,
                             Generator& rng) {
  // Mask of differing bits whose flip lands on an alive node; the byte
  // loads stay, but the data-dependent branch per candidate does not.
  std::uint64_t alive_mask = 0;
  std::uint64_t diff = cur ^ target;
  while (diff != 0) {
    const std::uint64_t lowest = diff & (~diff + 1);
    alive_mask |=
        lowest & (0 - static_cast<std::uint64_t>(c.alive[cur ^ lowest]));
    diff ^= lowest;
  }
  if (alive_mask == 0) {
    return kNoHop;
  }
  if ((alive_mask & (alive_mask - 1)) == 0) {
    // Single alive candidate: the uniform choice is forced, skip the rng
    // draw.  (Late route phases at low q live here.)
    return cur ^ alive_mask;
  }
  // Pick the k-th set bit of the alive mask uniformly.
  const std::uint64_t k = rng.uniform_below(
      static_cast<std::uint64_t>(std::popcount(alive_mask)));
#if defined(__BMI2__)
  return cur ^ _pdep_u64(std::uint64_t{1} << k, alive_mask);
#else
  for (std::uint64_t drop = 0; drop < k; ++drop) {
    alive_mask &= alive_mask - 1;  // clear lowest set bit
  }
  return cur ^ (alive_mask & (~alive_mask + 1));
#endif
}

inline RouteResult route_hypercube(const FlatCtx& c, NodeId source,
                                   NodeId target, math::Rng& rng) {
  return route_stepped(c, source, target,
                       [&rng](const FlatCtx& ctx, NodeId cur, NodeId tgt) {
                         return step_hypercube(ctx, cur, tgt, rng);
                       });
}

// Chord successor-list fallback, shared by both finger variants: the
// farthest non-overshooting alive successor, but only when it outreaches
// the best alive finger.
inline bool chord_successor(const FlatCtx& c, NodeId cur,
                            std::uint64_t distance,
                            std::uint64_t best_progress, NodeId& out) {
  for (int k = c.successor_links; k > static_cast<int>(best_progress); --k) {
    if (static_cast<std::uint64_t>(k) > distance) {
      continue;  // overshoots
    }
    const NodeId succ = (cur + static_cast<std::uint64_t>(k)) & c.mask;
    if (c.alive[succ]) {
      out = succ;
      return true;
    }
  }
  return false;
}

// Chord with deterministic fingers: offsets are exactly the powers of two,
// so the greedy scan is pure bit arithmetic -- no table reads at all.
/// One forwarding step; kNoHop when the protocol drops the message.
inline NodeId step_chord_deterministic(const FlatCtx& c, NodeId cur,
                                       NodeId target) {
  const std::uint64_t distance = (target - cur) & c.mask;
  std::uint64_t best_progress = 0;
  NodeId best = cur;
  // Largest power-of-two offset <= distance, then downward.
  for (int k = std::bit_width(distance) - 1; k >= 0; --k) {
    const NodeId f = (cur + (std::uint64_t{1} << k)) & c.mask;
    if (c.alive[f]) {
      best_progress = std::uint64_t{1} << k;
      best = f;
      break;
    }
  }
  NodeId next;
  if (!chord_successor(c, cur, distance, best_progress, next)) {
    if (best_progress == 0) {
      return kNoHop;
    }
    next = best;
  }
  return next;
}

inline RouteResult route_chord_deterministic(const FlatCtx& c, NodeId source,
                                             NodeId target) {
  return route_stepped(c, source, target,
                       [](const FlatCtx& ctx, NodeId cur, NodeId tgt) {
                         return step_chord_deterministic(ctx, cur, tgt);
                       });
}

// Chord with randomized fingers: greedy scan over the node's contiguous
// finger row (dyadic intervals shrink with the index, so the first alive
// non-overshooting finger is the greedy choice).
/// One forwarding step; kNoHop when the protocol drops the message.
inline NodeId step_chord_randomized(const FlatCtx& c, NodeId cur,
                                    NodeId target) {
  const std::uint64_t distance = (target - cur) & c.mask;
  const std::uint32_t* row = c.table + cur * static_cast<std::uint64_t>(c.d);
  std::uint64_t best_progress = 0;
  NodeId best = cur;
  for (int i = 0; i < c.d; ++i) {
    const NodeId f = row[i];
    const std::uint64_t progress = (f - cur) & c.mask;
    if (progress > distance) {
      continue;
    }
    if (c.alive[f]) {
      best_progress = progress;
      best = f;
      break;
    }
  }
  NodeId next;
  if (!chord_successor(c, cur, distance, best_progress, next)) {
    if (best_progress == 0) {
      return kNoHop;
    }
    next = best;
  }
  return next;
}

inline RouteResult route_chord_randomized(const FlatCtx& c, NodeId source,
                                          NodeId target) {
  return route_stepped(c, source, target,
                       [](const FlatCtx& ctx, NodeId cur, NodeId tgt) {
                         return step_chord_randomized(ctx, cur, tgt);
                       });
}

// Symphony: greedy clockwise over shortcuts then near neighbors.
/// One forwarding step; kNoHop when the protocol drops the message.
inline NodeId step_symphony(const FlatCtx& c, NodeId cur, NodeId target) {
  const std::uint64_t distance = (target - cur) & c.mask;
  std::uint64_t best_progress = 0;
  NodeId best = 0;
  const std::uint32_t* row = c.table + cur * static_cast<std::uint64_t>(c.ks);
  for (int j = 0; j < c.ks; ++j) {
    const NodeId link = row[j];
    const std::uint64_t progress = (link - cur) & c.mask;
    if (progress > distance || progress <= best_progress) {
      continue;
    }
    if (c.alive[link]) {
      best_progress = progress;
      best = link;
    }
  }
  for (int k = 1; k <= c.kn; ++k) {
    const std::uint64_t progress = static_cast<std::uint64_t>(k);
    if (progress > distance || progress <= best_progress) {
      continue;
    }
    const NodeId link = (cur + progress) & c.mask;
    if (c.alive[link]) {
      best_progress = progress;
      best = link;
    }
  }
  return best_progress == 0 ? kNoHop : best;
}

inline RouteResult route_symphony(const FlatCtx& c, NodeId source,
                                  NodeId target) {
  return route_stepped(c, source, target,
                       [](const FlatCtx& ctx, NodeId cur, NodeId tgt) {
                         return step_symphony(ctx, cur, tgt);
                       });
}

/// Builds a context over an immutable overlay + failure scenario.  Unknown
/// overlay types (and use_flat_kernels = false) yield kGeneric, which the
/// caller routes through the virtual-dispatch Router instead.
FlatCtx make_ctx(const Overlay& overlay, const FailureScenario& failures,
                 std::uint64_t max_hops, bool use_flat_kernels);

}  // namespace flat
}  // namespace dht::sim
