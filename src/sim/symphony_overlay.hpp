// Small-world (Symphony) overlay -- paper Section 3.5.
//
// Each node keeps kn near neighbors (its kn clockwise successors) and ks
// long-range shortcuts whose clockwise distance is drawn from the harmonic
// density p(x) ~ 1/x on [1, N-1] (Kleinberg/Symphony's 1/d distribution).
// Forwarding rule: greedy clockwise without overshooting -- among alive
// links with offset <= distance-to-target, take the farthest-reaching one.
// With its immediate successor alive a node can always make progress, so a
// route dies mainly when all kn + ks links are dead, which is exactly the
// failure mode the paper's Markov chain models (Fig. 8(b)).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/overlay.hpp"

namespace dht::sim {

class SymphonyOverlay final : public Overlay {
 public:
  /// Preconditions: near_neighbors >= 1, shortcuts >= 1, and
  /// near_neighbors + shortcuts < N.
  SymphonyOverlay(const IdSpace& space, int near_neighbors, int shortcuts,
                  math::Rng& rng);

  std::string_view name() const noexcept override { return "symphony"; }
  const IdSpace& space() const noexcept override { return space_; }

  std::optional<NodeId> next_hop(NodeId current, NodeId target,
                                 const FailureScenario& failures,
                                 math::Rng& rng) const override;

  std::vector<NodeId> links(NodeId node) const override;
  void links_into(NodeId node, std::vector<NodeId>& out) const override;

  /// Row-major [node][j] materialized shortcut table (absolute targets).
  const std::vector<std::uint32_t>& shortcut_table() const noexcept {
    return shortcuts_;
  }

  int near_neighbors() const noexcept { return kn_; }
  int shortcuts() const noexcept { return ks_; }

  /// The j-th shortcut of `node` (0-based, j < shortcuts()).
  NodeId shortcut(NodeId node, int j) const;

 private:
  IdSpace space_;
  int kn_;
  int ks_;
  // Row-major [node][j] absolute shortcut targets; near neighbors are
  // implicit (node + 1 .. node + kn).
  std::vector<std::uint32_t> shortcuts_;
};

}  // namespace dht::sim
