// Hypercube (CAN) overlay -- paper Section 3.2.
//
// The d-dimensional binary hypercube needs no materialized tables: node v's
// neighbors are v with one bit flipped.  Forwarding rule: any alive neighbor
// that corrects a differing bit (reduces the Hamming distance by one) is
// admissible; the protocol picks uniformly at random among them ("correct
// bits in any order").  The message drops when all correcting neighbors are
// dead.
#pragma once

#include "sim/overlay.hpp"

namespace dht::sim {

class HypercubeOverlay final : public Overlay {
 public:
  explicit HypercubeOverlay(const IdSpace& space);

  std::string_view name() const noexcept override { return "hypercube"; }
  const IdSpace& space() const noexcept override { return space_; }

  std::optional<NodeId> next_hop(NodeId current, NodeId target,
                                 const FailureScenario& failures,
                                 math::Rng& rng) const override;

  std::vector<NodeId> links(NodeId node) const override;
  void links_into(NodeId node, std::vector<NodeId>& out) const override;

 private:
  IdSpace space_;
};

}  // namespace dht::sim
