// Parallel, deterministic Monte-Carlo routing engine.
//
// The figure reproductions need millions of sampled routes per (N, q)
// point; this engine shards the experiment across a thread pool while
// keeping results *bit-identical regardless of thread count*:
//
//  * The pair budget is split over a fixed number of shards that does NOT
//    depend on the thread count.  Shard k draws from Rng::fork(k) of the
//    caller's generator, so its route sample is a pure function of
//    (seed, shard index).
//  * Worker threads pull shard indices from an atomic counter; each shard
//    accumulates into its own RoutabilityEstimate slot.
//  * Shard estimates are merged in shard order.  RoutabilityEstimate's
//    counters are exact integers (see monte_carlo.hpp), so the merge is
//    associative and equals a single sequential pass over the same routes.
//
// Routing itself runs on the flattened per-geometry kernels of
// sim/flat_route.hpp: one tight loop per overlay family reading the
// contiguous neighbor tables (PrefixTable entries, materialized Chord
// fingers, Symphony shortcut rows) and the raw liveness mask directly -- no
// virtual dispatch, no std::optional, no precondition re-checks per hop.
// Kernels are exact replicas of the corresponding Overlay::next_hop rules
// (property-tested), and unknown overlay types fall back to the generic
// Router path.  The shard pool itself lives in sim/shard_pool.hpp; the
// churn trajectory engine (churn/trajectory.hpp) reuses both pieces.
#pragma once

#include <cstdint>

#include "math/rng.hpp"
#include "obs/phase_timer.hpp"
#include "sim/monte_carlo.hpp"

namespace dht::sim {

struct ParallelOptions {
  /// Number of ordered (source, target) pairs to sample.
  std::uint64_t pairs = 20000;
  /// Safety hop cap (0 = default N).
  std::uint64_t max_hops = 0;
  /// Worker threads (0 = hardware concurrency).  Never affects results.
  unsigned threads = 0;
  /// Work shards (0 = default, min(pairs, 256)).  Results are a function of
  /// (seed, shard count); keep it fixed when comparing runs.
  std::uint64_t shards = 0;
  /// When false, routes through the generic virtual next_hop path instead
  /// of the flattened kernels.  Both paths run on the same interleaved lane
  /// driver with the same per-lane pair streams, so for the rng-free
  /// forwarding rules (tree, XOR, ring, Symphony) the kernels replicate
  /// next_hop exactly and results are bit-identical either way; the
  /// hypercube kernel spends one counter-stream draw per hop instead of
  /// next_hop's one-per-candidate reservoir, so its routes differ
  /// individually while the estimate stays identically distributed.
  bool use_flat_kernels = true;
  /// Pin worker threads round-robin across NUMA nodes (sim/topology.hpp);
  /// best effort, a silent no-op where unsupported.  Never affects results.
  bool pin_workers = false;
  /// Observability sinks (obs/phase_timer.hpp), both optional and both
  /// pure timing side-channels: per-shard phase seconds are reduced in
  /// shard order into `profile`, phase spans go to `trace`.  Null (the
  /// default) is the zero-cost path; attaching them never changes any
  /// counter.
  obs::PhaseProfile* profile = nullptr;
  obs::Trace* trace = nullptr;
};

/// Monte-Carlo estimate over sampled alive pairs, sharded across threads.
/// `rng` is only fork()ed, never advanced.  Preconditions: at least two
/// alive nodes, pairs > 0.
RoutabilityEstimate estimate_routability_parallel(
    const Overlay& overlay, const FailureScenario& failures,
    const ParallelOptions& options, const math::Rng& rng);

struct ExactParallelOptions {
  std::uint64_t max_hops = 0;
  unsigned threads = 0;
  /// Source-block shards (0 = default, min(N, 256)).
  std::uint64_t shards = 0;
  bool use_flat_kernels = true;
  /// Pin worker threads round-robin across NUMA nodes; scheduling only,
  /// never affects results.
  bool pin_workers = false;
};

/// Exact measurement over every ordered pair of alive nodes with the O(N^2)
/// source loop sharded across threads.  For overlays whose forwarding rule
/// consumes no randomness (tree, XOR, ring, Symphony) the result is
/// bit-identical to the sequential exact_routability; the hypercube's
/// random tie-break draws from per-shard forks instead of one stream, so
/// its result is deterministic but shard-layout-dependent.
RoutabilityEstimate exact_routability_parallel(
    const Overlay& overlay, const FailureScenario& failures,
    const ExactParallelOptions& options, const math::Rng& rng);

}  // namespace dht::sim
