// Route execution over an overlay.
//
// Iterates Overlay::next_hop until the message arrives, is dropped, or a
// safety hop cap fires (all five protocols make strictly monotone progress,
// so the cap exists only to turn a protocol bug into a loud failure).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/overlay.hpp"

namespace dht::sim {

/// Why a route ended.
enum class RouteStatus {
  kArrived,   // message reached the target
  kDropped,   // a node had no admissible alive neighbor (failed path)
  kHopLimit,  // safety cap exceeded -- indicates a protocol bug
};

const char* to_string(RouteStatus status) noexcept;

struct RouteResult {
  RouteStatus status = RouteStatus::kDropped;
  int hops = 0;
  NodeId last_node = 0;  // where the route ended (target on success)

  bool success() const noexcept { return status == RouteStatus::kArrived; }
};

/// A route with its full node sequence (source first); for the examples and
/// for debugging, not the hot path.
struct RouteTrace {
  RouteResult result;
  std::vector<NodeId> path;
};

/// Stateless route executor bound to an overlay + failure scenario.
class Router {
 public:
  /// `max_hops` of 0 selects the default cap N (strict progress bounds any
  /// route by N - 1 hops).
  Router(const Overlay& overlay, const FailureScenario& failures,
         std::uint64_t max_hops = 0);

  /// Routes from source toward target (source != target).  Liveness of the
  /// endpoints is the caller's business: the static-resilience metric
  /// samples alive pairs, but the router itself only consults the mask for
  /// forwarding decisions.
  RouteResult route(NodeId source, NodeId target, math::Rng& rng) const;

  /// Same, recording every node on the path.
  RouteTrace route_traced(NodeId source, NodeId target, math::Rng& rng) const;

 private:
  const Overlay& overlay_;
  const FailureScenario& failures_;
  std::uint64_t max_hops_;
};

}  // namespace dht::sim
