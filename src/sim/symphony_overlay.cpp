#include "sim/symphony_overlay.hpp"

#include <cmath>

#include "common/check.hpp"

namespace dht::sim {

SymphonyOverlay::SymphonyOverlay(const IdSpace& space, int near_neighbors,
                                 int shortcuts, math::Rng& rng)
    : space_(space), kn_(near_neighbors), ks_(shortcuts) {
  DHT_CHECK(kn_ >= 1, "symphony requires at least one near neighbor");
  DHT_CHECK(ks_ >= 1, "symphony requires at least one shortcut");
  DHT_CHECK(static_cast<std::uint64_t>(kn_ + ks_) < space.size(),
            "kn + ks must be smaller than the network");
  const std::uint64_t size = space_.size();
  const double log_range = std::log(static_cast<double>(size - 1));
  shortcuts_.resize(size * static_cast<std::uint64_t>(ks_));
  for (NodeId v = 0; v < size; ++v) {
    for (int j = 0; j < ks_; ++j) {
      // Inverse-transform sample of the harmonic density p(x) ~ 1/x on
      // [1, N-1]: x = exp(U * ln(N-1)).
      const double u = rng.uniform01();
      std::uint64_t offset =
          static_cast<std::uint64_t>(std::exp(u * log_range));
      if (offset < 1) {
        offset = 1;
      }
      if (offset > size - 1) {
        offset = size - 1;
      }
      shortcuts_[v * static_cast<std::uint64_t>(ks_) +
                 static_cast<std::uint64_t>(j)] =
          static_cast<std::uint32_t>((v + offset) & (size - 1));
    }
  }
}

NodeId SymphonyOverlay::shortcut(NodeId node, int j) const {
  DHT_CHECK(space_.contains(node), "node id out of range");
  DHT_CHECK(j >= 0 && j < ks_, "shortcut index out of range");
  return shortcuts_[node * static_cast<std::uint64_t>(ks_) +
                    static_cast<std::uint64_t>(j)];
}

std::optional<NodeId> SymphonyOverlay::next_hop(
    NodeId current, NodeId target, const FailureScenario& failures,
    math::Rng& /*rng*/) const {
  DHT_CHECK(current != target, "next_hop requires current != target");
  const int d = space_.bits();
  const std::uint64_t size = space_.size();
  const std::uint64_t distance = ring_distance(current, target, d);

  std::uint64_t best_progress = 0;
  NodeId best = 0;
  const auto consider = [&](NodeId link) {
    const std::uint64_t progress = ring_distance(current, link, d);
    if (progress > distance || progress <= best_progress) {
      return;  // overshoots, or no better than the current best
    }
    if (failures.alive(link)) {
      best_progress = progress;
      best = link;
    }
  };
  for (int j = 0; j < ks_; ++j) {
    consider(shortcut(current, j));
  }
  for (int k = 1; k <= kn_; ++k) {
    consider((current + static_cast<std::uint64_t>(k)) & (size - 1));
  }
  if (best_progress == 0) {
    return std::nullopt;
  }
  return best;
}

void SymphonyOverlay::links_into(NodeId node, std::vector<NodeId>& out) const {
  out.clear();
  const std::uint64_t size = space_.size();
  for (int k = 1; k <= kn_; ++k) {
    out.push_back((node + static_cast<std::uint64_t>(k)) & (size - 1));
  }
  const std::uint32_t* row =
      shortcuts_.data() + node * static_cast<std::uint64_t>(ks_);
  for (int j = 0; j < ks_; ++j) {
    out.push_back(row[j]);
  }
}

std::vector<NodeId> SymphonyOverlay::links(NodeId node) const {
  std::vector<NodeId> out;
  out.reserve(static_cast<size_t>(kn_ + ks_));
  links_into(node, out);
  return out;
}

}  // namespace dht::sim
