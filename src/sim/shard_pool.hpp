// The deterministic shard pool shared by the parallel engines.
//
// Work is split over a fixed number of shards that does NOT depend on the
// thread count; worker threads claim *runs* of shard indices from an atomic
// counter (one CAS per run instead of per shard, so the counter never
// becomes the contention point at high thread counts).  Because every
// shard's computation is a pure function of (caller seed, shard index) and
// per-shard results are merged in shard order afterwards, results are
// bit-identical at any thread count and any chunk size.  Used by the static
// Monte-Carlo engine (parallel_monte_carlo.cpp), the sparse engine
// (sparse/flat_sparse.cpp), and the churn trajectory engines
// (churn/trajectory.cpp, churn/sparse_trajectory.cpp).
//
// Workers can optionally be pinned round-robin across NUMA nodes
// (sim/topology.hpp).  Shard-private state allocated inside work() -- churn
// replica worlds, per-shard scratch -- is then first-touched on the
// worker's socket and stays there; on machines without pinning support the
// option is a silent no-op.  Pinning moves work, never changes it.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/topology.hpp"

namespace dht::sim {

/// Scheduling knobs for run_sharded; none of them ever affect results.
struct PoolOptions {
  /// Worker threads (already resolved; see resolve_threads).
  unsigned threads = 1;
  /// Shards claimed per atomic increment.  0 = auto: shards / (8 * workers)
  /// clamped to [1, 64] -- runs long enough to kill contention, short
  /// enough to load-balance the tail.  Engines whose shards are heavy
  /// (churn replica worlds) pass 1 explicitly.
  std::uint64_t chunk = 0;
  /// Pin worker w to topology().cpu_for_worker(w): workers are dealt
  /// round-robin across NUMA nodes so shard-private state spreads over all
  /// sockets via first-touch.  Best effort -- a silent no-op where
  /// unsupported.
  bool pin_workers = false;
};

/// Runs `work(shard_index)` for every shard in [0, shards); rethrows the
/// first worker exception.  A failed shard stops the pool *before* other
/// workers claim new shards or start queued ones; shards already in flight
/// finish (work() is never interrupted mid-shard).
template <typename Work>
void run_sharded(std::uint64_t shards, const PoolOptions& options,
                 Work&& work) {
  if (options.threads <= 1 || shards <= 1) {
    for (std::uint64_t s = 0; s < shards; ++s) {
      work(s);
    }
    return;
  }
  const unsigned workers =
      static_cast<unsigned>(std::min<std::uint64_t>(options.threads, shards));
  std::uint64_t chunk = options.chunk;
  if (chunk == 0) {
    chunk = std::clamp<std::uint64_t>(shards / (8 * workers), 1, 64);
  }
  std::atomic<std::uint64_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      if (options.pin_workers) {
        (void)pin_current_thread(topology().cpu_for_worker(w));
      }
      for (;;) {
        // Check the failure flag BEFORE claiming: once a shard has failed,
        // no worker may start new work, only drain.  (Claiming first would
        // let every worker begin one more run after the failure.)
        if (failed.load(std::memory_order_acquire)) {
          return;
        }
        const std::uint64_t begin =
            next.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= shards) {
          return;
        }
        const std::uint64_t end = std::min(begin + chunk, shards);
        for (std::uint64_t s = begin; s < end; ++s) {
          if (failed.load(std::memory_order_acquire)) {
            return;
          }
          try {
            work(s);
          } catch (...) {
            {
              const std::lock_guard<std::mutex> lock(error_mutex);
              if (!error) {
                error = std::current_exception();
              }
            }
            failed.store(true, std::memory_order_release);
            return;
          }
        }
      }
    });
  }
  for (std::thread& t : pool) {
    t.join();
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

/// Back-compatible entry point: threads only, default chunking, no pinning.
template <typename Work>
void run_sharded(std::uint64_t shards, unsigned threads, Work&& work) {
  run_sharded(shards, PoolOptions{.threads = threads},
              std::forward<Work>(work));
}

/// Resolves a requested worker count (0 = hardware concurrency, at least 1).
inline unsigned resolve_threads(unsigned requested) {
  if (requested != 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace dht::sim
