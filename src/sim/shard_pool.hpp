// The deterministic shard pool shared by the parallel engines.
//
// Work is split over a fixed number of shards that does NOT depend on the
// thread count; worker threads pull shard indices from an atomic counter.
// Because every shard's computation is a pure function of (caller seed,
// shard index) and per-shard results are merged in shard order afterwards,
// results are bit-identical at any thread count.  Used by the static
// Monte-Carlo engine (parallel_monte_carlo.cpp) and the churn trajectory
// engine (churn/trajectory.cpp).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace dht::sim {

/// Runs `work(shard_index)` for every shard on `threads` workers pulling
/// from an atomic counter; rethrows the first worker exception.
template <typename Work>
void run_sharded(std::uint64_t shards, unsigned threads, Work&& work) {
  if (threads <= 1 || shards <= 1) {
    for (std::uint64_t s = 0; s < shards; ++s) {
      work(s);
    }
    return;
  }
  std::atomic<std::uint64_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;
  const unsigned workers =
      static_cast<unsigned>(std::min<std::uint64_t>(threads, shards));
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::uint64_t s = next.fetch_add(1, std::memory_order_relaxed);
        if (s >= shards || failed.load(std::memory_order_relaxed)) {
          return;
        }
        try {
          work(s);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) {
            error = std::current_exception();
          }
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (std::thread& t : pool) {
    t.join();
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

/// Resolves a requested worker count (0 = hardware concurrency, at least 1).
inline unsigned resolve_threads(unsigned requested) {
  if (requested != 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace dht::sim
