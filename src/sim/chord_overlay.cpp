#include "sim/chord_overlay.hpp"

#include "common/check.hpp"

namespace dht::sim {

ChordOverlay::ChordOverlay(const IdSpace& space, math::Rng& rng,
                           ChordFingers fingers, int successor_links)
    : space_(space), variant_(fingers), successor_links_(successor_links) {
  DHT_CHECK(successor_links >= 0, "successor link count must be >= 0");
  DHT_CHECK(static_cast<std::uint64_t>(successor_links) < space.size(),
            "successor list must be smaller than the ring");
  const int d = space_.bits();
  const std::uint64_t size = space_.size();
  if (variant_ == ChordFingers::kDeterministic && d > kFlattenBitsCap) {
    return;  // table would not fit; finger() computes entries on the fly
  }
  fingers_.resize(size * static_cast<std::uint64_t>(d));
  for (NodeId v = 0; v < size; ++v) {
    for (int i = 1; i <= d; ++i) {
      // Finger i: clockwise offset 2^{d-i} exactly (deterministic) or
      // uniform in [2^{d-i}, 2^{d-i+1}) (randomized).
      const std::uint64_t lo = std::uint64_t{1} << (d - i);
      const std::uint64_t offset =
          variant_ == ChordFingers::kDeterministic ? lo
                                                   : lo + rng.uniform_below(lo);
      fingers_[v * static_cast<std::uint64_t>(d) +
               static_cast<std::uint64_t>(i - 1)] =
          static_cast<std::uint32_t>((v + offset) & (size - 1));
    }
  }
}

NodeId ChordOverlay::finger(NodeId node, int index) const {
  DHT_CHECK(space_.contains(node), "node id out of range");
  DHT_CHECK(index >= 1 && index <= space_.bits(), "finger index out of range");
  if (fingers_.empty()) {
    const std::uint64_t offset = std::uint64_t{1} << (space_.bits() - index);
    return (node + offset) & (space_.size() - 1);
  }
  return fingers_[node * static_cast<std::uint64_t>(space_.bits()) +
                  static_cast<std::uint64_t>(index - 1)];
}

std::optional<NodeId> ChordOverlay::next_hop(NodeId current, NodeId target,
                                             const FailureScenario& failures,
                                             math::Rng& /*rng*/) const {
  DHT_CHECK(current != target, "next_hop requires current != target");
  const int d = space_.bits();
  const std::uint64_t distance = ring_distance(current, target, d);
  // Finger offsets live in disjoint dyadic intervals that shrink with the
  // index, so scanning i = 1..d visits fingers in decreasing-progress order;
  // the first alive, non-overshooting one is the greedy choice among the
  // fingers.
  std::uint64_t best_progress = 0;
  NodeId best = current;
  for (int i = 1; i <= d; ++i) {
    const NodeId f = finger(current, i);
    const std::uint64_t progress = ring_distance(current, f, d);
    if (progress > distance) {
      continue;  // would overshoot the target clockwise
    }
    if (failures.alive(f)) {
      best_progress = progress;
      best = f;
      break;
    }
  }
  // The successor list only matters when it outreaches the best alive
  // finger (e.g. everything through finger d dead but node+3 alive).
  const std::uint64_t size = space_.size();
  for (int k = successor_links_; k > static_cast<int>(best_progress); --k) {
    if (static_cast<std::uint64_t>(k) > distance) {
      continue;  // overshoots
    }
    const NodeId succ = (current + static_cast<std::uint64_t>(k)) & (size - 1);
    if (failures.alive(succ)) {
      return succ;
    }
  }
  if (best_progress == 0) {
    return std::nullopt;
  }
  return best;
}

void ChordOverlay::links_into(NodeId node, std::vector<NodeId>& out) const {
  out.clear();
  const int d = space_.bits();
  if (!fingers_.empty()) {
    const std::uint32_t* row =
        fingers_.data() + node * static_cast<std::uint64_t>(d);
    for (int i = 0; i < d; ++i) {
      out.push_back(row[i]);
    }
  } else {
    for (int i = 1; i <= d; ++i) {
      out.push_back(finger(node, i));
    }
  }
  for (int k = 1; k <= successor_links_; ++k) {
    out.push_back((node + static_cast<std::uint64_t>(k)) &
                  (space_.size() - 1));
  }
}

std::vector<NodeId> ChordOverlay::links(NodeId node) const {
  std::vector<NodeId> out;
  out.reserve(static_cast<size_t>(space_.bits() + successor_links_));
  links_into(node, out);
  return out;
}

}  // namespace dht::sim
