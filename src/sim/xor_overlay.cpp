#include "sim/xor_overlay.hpp"

#include <bit>

#include "common/check.hpp"

namespace dht::sim {

XorOverlay::XorOverlay(const IdSpace& space, math::Rng& rng)
    : space_(space), table_(std::make_shared<PrefixTable>(space, rng)) {}

XorOverlay::XorOverlay(const IdSpace& space,
                       std::shared_ptr<const PrefixTable> table)
    : space_(space), table_(std::move(table)) {
  DHT_CHECK(table_ != nullptr, "XorOverlay requires a table");
  DHT_CHECK(table_->levels() == space_.bits(),
            "table level count must match the id space");
}

std::optional<NodeId> XorOverlay::next_hop(NodeId current, NodeId target,
                                           const FailureScenario& failures,
                                           math::Rng& /*rng*/) const {
  DHT_CHECK(current != target, "next_hop requires current != target");
  const int d = space_.bits();
  // Scan differing levels from the highest order down; the first alive
  // neighbor gives the greedy (largest XOR-distance reduction) hop.
  NodeId diff = xor_distance(current, target);
  while (diff != 0) {
    const int level = d - std::bit_width(diff) + 1;
    const NodeId candidate = table_->neighbor(current, level);
    if (failures.alive(candidate)) {
      return candidate;
    }
    diff &= ~(NodeId{1} << (d - level));  // try the next differing bit down
  }
  return std::nullopt;
}

void XorOverlay::links_into(NodeId node, std::vector<NodeId>& out) const {
  out.clear();
  const int d = space_.bits();
  const std::uint32_t* row =
      table_->entries().data() + node * static_cast<std::uint64_t>(d);
  for (int i = 0; i < d; ++i) {
    out.push_back(row[i]);
  }
}

std::vector<NodeId> XorOverlay::links(NodeId node) const {
  std::vector<NodeId> out;
  out.reserve(static_cast<size_t>(space_.bits()));
  links_into(node, out);
  return out;
}

}  // namespace dht::sim
