#include "sim/failure.hpp"

#include "common/check.hpp"

namespace dht::sim {

FailureScenario::FailureScenario(std::uint64_t size, double q)
    : size_(size), q_(q), alive_(size, 1), alive_count_(size) {}

FailureScenario::FailureScenario(const IdSpace& space, double q,
                                 math::Rng& rng)
    : FailureScenario(space.size(), q) {
  DHT_CHECK(q >= 0.0 && q <= 1.0, "failure probability q must be in [0, 1]");
  if (q == 0.0) {
    return;
  }
  alive_count_ = 0;
  for (std::uint64_t id = 0; id < size_; ++id) {
    const bool up = !rng.bernoulli(q);
    alive_[id] = up ? 1 : 0;
    alive_count_ += up ? 1 : 0;
  }
}

FailureScenario FailureScenario::all_alive(const IdSpace& space) {
  return FailureScenario(space.size(), 0.0);
}

NodeId FailureScenario::sample_alive(math::Rng& rng) const {
  DHT_CHECK(alive_count_ > 0, "no alive node to sample");
  // Rejection sampling: at the failure probabilities of interest (q <= 0.9)
  // the expected number of draws is at most 10.
  for (;;) {
    const NodeId id = rng.uniform_below(size_);
    if (alive_[id] != 0) {
      return id;
    }
  }
}

void FailureScenario::kill(NodeId id) {
  DHT_CHECK(id < size_, "node id out of range");
  if (alive_[id] != 0) {
    alive_[id] = 0;
    --alive_count_;
  }
}

void FailureScenario::revive(NodeId id) {
  DHT_CHECK(id < size_, "node id out of range");
  if (alive_[id] == 0) {
    alive_[id] = 1;
    ++alive_count_;
  }
}

}  // namespace dht::sim
