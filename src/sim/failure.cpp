#include "sim/failure.hpp"

#include "common/check.hpp"

namespace dht::sim {

FailureScenario::FailureScenario(std::uint64_t size, double q)
    : size_(size), q_(q), alive_(size, 1), alive_count_(size) {
  rebuild_alive_index();
}

FailureScenario::FailureScenario(const IdSpace& space, double q,
                                 math::Rng& rng)
    : size_(space.size()), q_(q), alive_(space.size(), 1),
      alive_count_(space.size()) {
  DHT_CHECK(q >= 0.0 && q <= 1.0, "failure probability q must be in [0, 1]");
  if (q != 0.0) {
    alive_count_ = 0;
    for (std::uint64_t id = 0; id < size_; ++id) {
      const bool up = !rng.bernoulli(q);
      alive_[id] = up ? 1 : 0;
      alive_count_ += up ? 1 : 0;
    }
  }
  rebuild_alive_index();
}

FailureScenario FailureScenario::all_alive(const IdSpace& space) {
  return FailureScenario(space.size(), 0.0);
}

void FailureScenario::rebuild_alive_index() {
  alive_ids_.clear();
  alive_ids_.reserve(alive_count_);
  alive_pos_.assign(size_, kDeadPos);
  for (std::uint64_t id = 0; id < size_; ++id) {
    if (alive_[id] != 0) {
      alive_pos_[id] = static_cast<std::uint32_t>(alive_ids_.size());
      alive_ids_.push_back(static_cast<std::uint32_t>(id));
    }
  }
}

void FailureScenario::kill(NodeId id) {
  DHT_CHECK(id < size_, "node id out of range");
  if (alive_[id] != 0) {
    alive_[id] = 0;
    --alive_count_;
    // Swap-remove from the alive index, keeping the position map exact.
    const std::uint32_t pos = alive_pos_[id];
    const std::uint32_t last = alive_ids_.back();
    alive_ids_[pos] = last;
    alive_pos_[last] = pos;
    alive_ids_.pop_back();
    alive_pos_[id] = kDeadPos;
  }
}

void FailureScenario::revive(NodeId id) {
  DHT_CHECK(id < size_, "node id out of range");
  if (alive_[id] == 0) {
    alive_[id] = 1;
    ++alive_count_;
    alive_pos_[id] = static_cast<std::uint32_t>(alive_ids_.size());
    alive_ids_.push_back(static_cast<std::uint32_t>(id));
  }
}

}  // namespace dht::sim
