// The static-resilience failure model (paper Section 1).
//
// Every node fails independently with probability q; routing tables are not
// repaired ("static": a node's table stays as built, minus the dead
// entries).  A FailureScenario is an immutable liveness mask over an
// IdSpace, built deterministically from a seed.
//
// Alongside the byte mask the scenario maintains a dense index of alive
// node ids, so sample_alive is a single unbiased draw (O(1)) instead of
// rejection sampling -- the Monte-Carlo engine samples two endpoints per
// route, and at high failure probabilities rejection would dominate the
// routing work itself.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "math/rng.hpp"
#include "sim/id_space.hpp"

namespace dht::sim {

/// Immutable i.i.d. Bernoulli(1-q) liveness mask over an identifier space.
class FailureScenario {
 public:
  /// Fails each node independently with probability q.  Preconditions:
  /// q in [0, 1].
  FailureScenario(const IdSpace& space, double q, math::Rng& rng);

  /// A scenario where every node is alive (q = 0) -- the baseline topology.
  static FailureScenario all_alive(const IdSpace& space);

  bool alive(NodeId id) const { return alive_[id] != 0; }
  std::uint64_t alive_count() const noexcept { return alive_count_; }
  double alive_fraction() const noexcept {
    return static_cast<double>(alive_count_) / static_cast<double>(size_);
  }
  double failure_probability() const noexcept { return q_; }
  std::uint64_t size() const noexcept { return size_; }

  /// Uniformly samples an alive node with a single rng draw (O(1) via the
  /// alive-index array).  Works with any generator exposing uniform_below
  /// (math::Rng, math::CounterRng).  Precondition: alive_count() > 0.
  template <typename Generator>
  NodeId sample_alive(Generator& rng) const {
    DHT_CHECK(alive_count_ > 0, "no alive node to sample");
    return alive_ids_[rng.uniform_below(alive_count_)];
  }

  /// Raw liveness mask (size() bytes, 1 = alive); hot-path routing kernels
  /// index this directly.
  const std::uint8_t* alive_data() const noexcept { return alive_.data(); }

  /// The dense array of alive node ids backing sample_alive.  Freshly
  /// constructed scenarios list ids in increasing order; kill/revive
  /// maintain the array with swap-remove/append, so the order afterwards is
  /// deterministic but not sorted.
  const std::vector<std::uint32_t>& alive_ids() const noexcept {
    return alive_ids_;
  }

  /// Test hooks: force a node's state (updates the alive count and index).
  void kill(NodeId id);
  void revive(NodeId id);

 private:
  FailureScenario(std::uint64_t size, double q);

  void rebuild_alive_index();

  static constexpr std::uint32_t kDeadPos = ~std::uint32_t{0};

  std::uint64_t size_;
  double q_;
  std::vector<std::uint8_t> alive_;
  std::uint64_t alive_count_ = 0;
  std::vector<std::uint32_t> alive_ids_;  // dense alive ids (sample target)
  std::vector<std::uint32_t> alive_pos_;  // id -> index in alive_ids_, or kDeadPos
};

}  // namespace dht::sim
