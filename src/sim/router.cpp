#include "sim/router.hpp"

#include "common/check.hpp"

namespace dht::sim {

Overlay::~Overlay() = default;

void Overlay::links_into(NodeId node, std::vector<NodeId>& out) const {
  const std::vector<NodeId> all = links(node);
  out.assign(all.begin(), all.end());
}

const char* to_string(RouteStatus status) noexcept {
  switch (status) {
    case RouteStatus::kArrived:
      return "arrived";
    case RouteStatus::kDropped:
      return "dropped";
    case RouteStatus::kHopLimit:
      return "hop-limit";
  }
  return "unknown";
}

Router::Router(const Overlay& overlay, const FailureScenario& failures,
               std::uint64_t max_hops)
    : overlay_(overlay),
      failures_(failures),
      max_hops_(max_hops == 0 ? overlay.space().size() : max_hops) {
  DHT_CHECK(failures.size() == overlay.space().size(),
            "failure scenario and overlay must share the id space");
}

RouteResult Router::route(NodeId source, NodeId target,
                          math::Rng& rng) const {
  DHT_CHECK(overlay_.space().contains(source), "source out of range");
  DHT_CHECK(overlay_.space().contains(target), "target out of range");
  DHT_CHECK(source != target, "route requires source != target");

  RouteResult result;
  NodeId current = source;
  while (current != target) {
    if (static_cast<std::uint64_t>(result.hops) >= max_hops_) {
      result.status = RouteStatus::kHopLimit;
      result.last_node = current;
      return result;
    }
    const auto next = overlay_.next_hop(current, target, failures_, rng);
    if (!next.has_value()) {
      result.status = RouteStatus::kDropped;
      result.last_node = current;
      return result;
    }
    current = *next;
    ++result.hops;
  }
  result.status = RouteStatus::kArrived;
  result.last_node = current;
  return result;
}

RouteTrace Router::route_traced(NodeId source, NodeId target,
                                math::Rng& rng) const {
  DHT_CHECK(overlay_.space().contains(source), "source out of range");
  DHT_CHECK(overlay_.space().contains(target), "target out of range");
  DHT_CHECK(source != target, "route requires source != target");

  RouteTrace trace;
  trace.path.push_back(source);
  NodeId current = source;
  while (current != target) {
    if (static_cast<std::uint64_t>(trace.result.hops) >= max_hops_) {
      trace.result.status = RouteStatus::kHopLimit;
      trace.result.last_node = current;
      return trace;
    }
    const auto next = overlay_.next_hop(current, target, failures_, rng);
    if (!next.has_value()) {
      trace.result.status = RouteStatus::kDropped;
      trace.result.last_node = current;
      return trace;
    }
    current = *next;
    trace.path.push_back(current);
    ++trace.result.hops;
  }
  trace.result.status = RouteStatus::kArrived;
  trace.result.last_node = current;
  return trace;
}

}  // namespace dht::sim
