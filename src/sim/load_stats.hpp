// Per-node load accounting for the workload layer: messages forwarded per
// node, as commutative integer counters.
//
// Two shapes, one merge discipline:
//
//  * The sharded static estimator (sparse/flat_sparse.hpp) accumulates into
//    ONE shared array of relaxed atomic u64 counters.  Integer addition is
//    commutative and associative, so the final per-node counts are
//    independent of thread interleaving -- the same schedule-independence
//    HopStats gets from per-shard copies merged in shard order, without
//    materializing an N-sized vector per shard.
//  * The churn engine's shard-private worlds accumulate into plain u64
//    vectors (each world is single-threaded); per-shard summaries are
//    reduced in shard order.  Its batched sync measurement retires the
//    8 SoA lanes in whatever order routes terminate, which is safe for
//    the same reason the atomic shape is: each lane's bumps are plain
//    commutative additions into the world's own vector, so lane
//    scheduling cannot change the final counts (gated per pair against
//    the scalar path in test_sparse_churn).
//
// Overflow analysis (the hop_stats.hpp discipline): one route contributes
// at most max_hops < 2^26 forwards total, so a node's counter is bounded by
// pairs * 2^26; at the engines' 2^32-pair ceiling that is < 2^58, leaving
// u64 headroom of 2^6 such runs on a single accumulator.  The summary's
// sum of squared loads is computed in unsigned __int128 (a single counter
// squared can reach 2^116), converted to double only at the end.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace dht::sim {

/// Deterministic digest of a per-node load vector: the JSONL columns of
/// the heavy-traffic sweeps.  Derived single-threaded from exact integer
/// counts in index order, so equal count vectors give bit-equal summaries
/// -- the cross-thread determinism gates compare these directly.
struct LoadSummary {
  std::uint64_t nodes = 0;     ///< counters summarized (alive/present)
  std::uint64_t total = 0;     ///< total forwards
  std::uint64_t max = 0;       ///< hottest node
  std::uint64_t p99 = 0;       ///< 99th-percentile node load
  double mean = 0.0;
  double cv = 0.0;  ///< coefficient of variation (stddev / mean; 0 if mean 0)

  bool operator==(const LoadSummary&) const = default;
};

/// Summarizes the selected per-node loads: `loads[i]` enters iff
/// `include(i)` (liveness / presence filter -- dead slots hold no load and
/// would deflate the distribution).  Sorting a copy gives the exact p99
/// (the ceil-index convention: the smallest load >= 99% of nodes' loads).
template <typename Include>
LoadSummary summarize_load(const std::vector<std::uint64_t>& loads,
                           Include include) {
  LoadSummary out;
  std::vector<std::uint64_t> kept;
  kept.reserve(loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    if (include(i)) {
      kept.push_back(loads[i]);
    }
  }
  out.nodes = kept.size();
  if (kept.empty()) {
    return out;
  }
  unsigned __int128 sum = 0;
  unsigned __int128 sum_sq = 0;
  for (const std::uint64_t v : kept) {
    sum += v;
    sum_sq += static_cast<unsigned __int128>(v) * v;
    out.max = std::max(out.max, v);
  }
  out.total = static_cast<std::uint64_t>(sum);
  std::sort(kept.begin(), kept.end());
  out.p99 = kept[(kept.size() - 1) -
                 (kept.size() - 1) / 100];  // index ceil(0.99 * (m - 1))
  const double n = static_cast<double>(kept.size());
  out.mean = static_cast<double>(sum) / n;
  // Population variance from the exact integer sums; clamp the rounding
  // residue like HopStats::variance.
  const double centered =
      static_cast<double>(sum_sq) - n * out.mean * out.mean;
  const double variance = (centered < 0.0 ? 0.0 : centered) / n;
  out.cv = out.mean > 0.0 ? std::sqrt(variance) / out.mean : 0.0;
  return out;
}

inline LoadSummary summarize_load(const std::vector<std::uint64_t>& loads) {
  return summarize_load(loads, [](std::size_t) { return true; });
}

}  // namespace dht::sim
