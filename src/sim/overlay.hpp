// The overlay abstraction: a geometry's routing tables plus its basic
// forwarding rule.
//
// An Overlay owns the (randomized, seed-deterministic) routing tables of all
// N nodes and implements a single step of the paper's *basic* routing
// protocol: given the current message holder, the target, and the liveness
// mask, produce the next hop or report that the message must be dropped
// (no back-tracking, Section 4.1).  The Router (router.hpp) iterates this
// step; the Monte-Carlo estimator (monte_carlo.hpp) aggregates routes into
// failed-path statistics.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "math/rng.hpp"
#include "sim/failure.hpp"
#include "sim/id_space.hpp"
#include "sim/node_id.hpp"

namespace dht::sim {

class Overlay {
 public:
  virtual ~Overlay();

  /// Short lowercase identifier matching the core geometry names.
  virtual std::string_view name() const noexcept = 0;

  virtual const IdSpace& space() const noexcept = 0;

  /// One forwarding step of the basic protocol from `current` toward
  /// `target` (current != target), honoring `failures`.  Returns nullopt
  /// when no permissible alive neighbor exists (message dropped).  `rng` is
  /// consumed only by geometries whose rule involves a random choice among
  /// equivalent neighbors (hypercube).
  virtual std::optional<NodeId> next_hop(NodeId current, NodeId target,
                                         const FailureScenario& failures,
                                         math::Rng& rng) const = 0;

  /// The node's outgoing links (used for degree/percolation analysis).
  virtual std::vector<NodeId> links(NodeId node) const = 0;

  /// Non-allocating variant: overwrites `out` with the node's outgoing
  /// links.  Percolation sweeps call this once per node per scenario;
  /// overlays override it to copy straight out of their contiguous tables,
  /// reusing the caller's buffer.  The base implementation falls back to
  /// links().
  virtual void links_into(NodeId node, std::vector<NodeId>& out) const;
};

}  // namespace dht::sim
