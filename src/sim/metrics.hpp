// Hop-count metrics on the failure-free overlay.
//
// Used to sanity-check the simulator against the latency claims the paper
// quotes for each geometry (O(log N) for the DHTs, O(log^2 N) for
// Symphony), and by the perf benchmarks.
#pragma once

#include <cstdint>

#include "math/stats.hpp"
#include "sim/overlay.hpp"

namespace dht::sim {

/// Routes `samples` random (distinct) pairs on the all-alive scenario and
/// returns the hop-count statistics.  Every route must arrive; a drop or a
/// hop-limit hit throws (it would mean the overlay's basic protocol is
/// broken, since with q = 0 all five geometries route deterministically).
math::RunningStat failure_free_hops(const Overlay& overlay,
                                    std::uint64_t samples, math::Rng& rng);

}  // namespace dht::sim
