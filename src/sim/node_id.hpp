// Node identifiers and the distance functions of the five geometries.
//
// Identifiers are the low d bits of a uint64_t; the identifier space is
// fully populated (paper Section 4.1: d = log2 N).  Levels are 1-based from
// the most significant of the d bits, matching the paper's "correct bits
// from left to right" convention.
#pragma once

#include <cstdint>

namespace dht::sim {

using NodeId = std::uint64_t;

/// Number of differing bits (CAN/hypercube distance).
int hamming_distance(NodeId a, NodeId b) noexcept;

/// Kademlia distance: numeric value of a XOR b.
std::uint64_t xor_distance(NodeId a, NodeId b) noexcept;

/// 1-based level (from the most significant of d bits) of the highest-order
/// differing bit; 0 when a == b.  Precondition: 1 <= d <= 63 and both ids
/// fit in d bits.
int msb_diff_level(NodeId a, NodeId b, int d);

/// Clockwise ring distance from a to b in a 2^d space: (b - a) mod 2^d.
std::uint64_t ring_distance(NodeId a, NodeId b, int d);

/// The bit of `id` at 1-based level (level 1 = most significant of d bits).
bool bit_at_level(NodeId id, int level, int d);

/// `id` with the bit at `level` flipped.
NodeId flip_level(NodeId id, int level, int d);

/// True when a and b agree on the first `levels` bits (levels may be 0).
bool shares_prefix(NodeId a, NodeId b, int levels, int d);

/// The routing phase of a positive distance: h such that
/// dist in [2^{h-1}, 2^h); i.e. floor(log2 dist) + 1.  Precondition:
/// dist >= 1.  This is the paper's phase notion for ring/Symphony
/// (n(h) = 2^{h-1} identifiers per phase).
int phase_of_distance(std::uint64_t dist);

}  // namespace dht::sim
