// XOR (Kademlia) overlay -- paper Section 3.3.
//
// Same tables as the tree overlay; the forwarding rule is greedy in XOR
// distance.  Any neighbor at a level where the current node differs from
// the target strictly decreases the XOR distance (it resolves that bit and
// randomizes only lower-order ones), and the largest decrease comes from
// the highest-order differing level, so the rule is: take the alive
// neighbor at the highest-order differing level; fall back to progressively
// lower-order differing levels; drop the message when none is alive.
#pragma once

#include <memory>

#include "sim/overlay.hpp"
#include "sim/prefix_table.hpp"

namespace dht::sim {

class XorOverlay final : public Overlay {
 public:
  XorOverlay(const IdSpace& space, math::Rng& rng);

  /// Shares existing tables (tree-vs-XOR ablation on identical topology).
  XorOverlay(const IdSpace& space, std::shared_ptr<const PrefixTable> table);

  std::string_view name() const noexcept override { return "xor"; }
  const IdSpace& space() const noexcept override { return space_; }

  std::optional<NodeId> next_hop(NodeId current, NodeId target,
                                 const FailureScenario& failures,
                                 math::Rng& rng) const override;

  std::vector<NodeId> links(NodeId node) const override;
  void links_into(NodeId node, std::vector<NodeId>& out) const override;

  const std::shared_ptr<const PrefixTable>& table() const noexcept {
    return table_;
  }

 private:
  IdSpace space_;
  std::shared_ptr<const PrefixTable> table_;
};

}  // namespace dht::sim
