#include "sim/metrics.hpp"

#include "common/check.hpp"
#include "sim/router.hpp"

namespace dht::sim {

math::RunningStat failure_free_hops(const Overlay& overlay,
                                    std::uint64_t samples, math::Rng& rng) {
  DHT_CHECK(samples > 0, "failure_free_hops needs at least one sample");
  const FailureScenario alive = FailureScenario::all_alive(overlay.space());
  const Router router(overlay, alive);
  math::RunningStat hops;
  const std::uint64_t size = overlay.space().size();
  for (std::uint64_t i = 0; i < samples; ++i) {
    const NodeId source = rng.uniform_below(size);
    NodeId target = rng.uniform_below(size);
    while (target == source) {
      target = rng.uniform_below(size);
    }
    const RouteResult result = router.route(source, target, rng);
    DHT_CHECK(result.success(),
              "failure-free route did not arrive: overlay protocol bug");
    hops.add(static_cast<double>(result.hops));
  }
  return hops;
}

}  // namespace dht::sim
