#include "sim/flat_route.hpp"

#include "sim/chord_overlay.hpp"
#include "sim/hypercube_overlay.hpp"
#include "sim/overlay.hpp"
#include "sim/symphony_overlay.hpp"
#include "sim/tree_overlay.hpp"
#include "sim/xor_overlay.hpp"

namespace dht::sim::flat {

FlatCtx make_ctx(const Overlay& overlay, const FailureScenario& failures,
                 std::uint64_t max_hops, bool use_flat_kernels) {
  FlatCtx c;
  c.d = overlay.space().bits();
  c.mask = overlay.space().size() - 1;
  c.alive = failures.alive_data();
  c.max_hops = max_hops == 0 ? overlay.space().size() : max_hops;
  if (!use_flat_kernels) {
    return c;
  }
  if (const auto* tree = dynamic_cast<const TreeOverlay*>(&overlay)) {
    c.kind = KernelKind::kTree;
    c.table = tree->table()->entries().data();
  } else if (const auto* xr = dynamic_cast<const XorOverlay*>(&overlay)) {
    c.kind = KernelKind::kXor;
    c.table = xr->table()->entries().data();
  } else if (dynamic_cast<const HypercubeOverlay*>(&overlay) != nullptr) {
    c.kind = KernelKind::kHypercube;
  } else if (const auto* chord = dynamic_cast<const ChordOverlay*>(&overlay)) {
    c.successor_links = chord->successor_links();
    if (chord->finger_variant() == ChordFingers::kDeterministic) {
      c.kind = KernelKind::kChordDeterministic;
    } else {
      c.kind = KernelKind::kChordRandomized;
      c.table = chord->finger_table().data();
    }
  } else if (const auto* sym = dynamic_cast<const SymphonyOverlay*>(&overlay)) {
    c.kind = KernelKind::kSymphony;
    c.kn = sym->near_neighbors();
    c.ks = sym->shortcuts();
    c.table = sym->shortcut_table().data();
  }
  return c;
}

}  // namespace dht::sim::flat
