// The fully populated identifier space (paper Section 4.1: every one of the
// 2^d identifiers hosts a node).
#pragma once

#include <cstdint>

#include "sim/node_id.hpp"

namespace dht::sim {

/// A fully populated d-bit identifier space, N = 2^d nodes.
class IdSpace {
 public:
  /// Precondition: 1 <= d <= 26 (the simulator materializes per-node
  /// routing tables; 2^26 nodes * log N entries is the practical ceiling).
  explicit IdSpace(int d);

  int bits() const noexcept { return d_; }
  std::uint64_t size() const noexcept { return std::uint64_t{1} << d_; }

  bool contains(NodeId id) const noexcept { return id < size(); }

 private:
  int d_;
};

}  // namespace dht::sim
