#include "sim/hypercube_overlay.hpp"

#include "common/check.hpp"

namespace dht::sim {

HypercubeOverlay::HypercubeOverlay(const IdSpace& space) : space_(space) {}

std::optional<NodeId> HypercubeOverlay::next_hop(
    NodeId current, NodeId target, const FailureScenario& failures,
    math::Rng& rng) const {
  DHT_CHECK(current != target, "next_hop requires current != target");
  // Reservoir-sample uniformly among alive bit-correcting neighbors.
  NodeId chosen = 0;
  std::uint64_t alive_candidates = 0;
  NodeId diff = current ^ target;
  while (diff != 0) {
    const NodeId lowest_bit = diff & (~diff + 1);
    const NodeId candidate = current ^ lowest_bit;
    if (failures.alive(candidate)) {
      ++alive_candidates;
      if (rng.uniform_below(alive_candidates) == 0) {
        chosen = candidate;
      }
    }
    diff ^= lowest_bit;
  }
  if (alive_candidates == 0) {
    return std::nullopt;
  }
  return chosen;
}

void HypercubeOverlay::links_into(NodeId node,
                                  std::vector<NodeId>& out) const {
  out.clear();
  for (int level = 1; level <= space_.bits(); ++level) {
    out.push_back(flip_level(node, level, space_.bits()));
  }
}

std::vector<NodeId> HypercubeOverlay::links(NodeId node) const {
  std::vector<NodeId> out;
  out.reserve(static_cast<size_t>(space_.bits()));
  links_into(node, out);
  return out;
}

}  // namespace dht::sim
