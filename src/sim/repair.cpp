#include "sim/repair.hpp"

#include <optional>
#include <vector>

#include "common/check.hpp"

namespace dht::sim {

namespace {

/// Uniformly samples an alive member of the class [base, base + count), or
/// returns nullopt when none is alive.  Rejection sampling with a bounded
/// number of tries, then an exact scan (rare: the class is nearly dead).
std::optional<NodeId> sample_alive_in_class(NodeId base, std::uint64_t count,
                                            const FailureScenario& failures,
                                            math::Rng& rng) {
  constexpr int kRejectionTries = 64;
  for (int attempt = 0; attempt < kRejectionTries; ++attempt) {
    const NodeId candidate = base + rng.uniform_below(count);
    if (failures.alive(candidate)) {
      return candidate;
    }
  }
  // Exact fallback: collect the alive members and pick uniformly.
  std::vector<NodeId> alive;
  for (std::uint64_t offset = 0; offset < count; ++offset) {
    if (failures.alive(base + offset)) {
      alive.push_back(base + offset);
    }
  }
  if (alive.empty()) {
    return std::nullopt;
  }
  return alive[rng.uniform_below(alive.size())];
}

}  // namespace

std::shared_ptr<const PrefixTable> repair_prefix_table(
    const PrefixTable& table, const IdSpace& space,
    const FailureScenario& failures, double repair_probability,
    math::Rng& rng) {
  DHT_CHECK(repair_probability >= 0.0 && repair_probability <= 1.0,
            "repair probability must be in [0, 1]");
  DHT_CHECK(table.levels() == space.bits(),
            "table level count must match the id space");
  DHT_CHECK(failures.size() == space.size(),
            "failure scenario must match the id space");

  const int d = space.bits();
  std::vector<std::uint32_t> entries = table.entries();
  for (NodeId v = 0; v < space.size(); ++v) {
    for (int level = 1; level <= d; ++level) {
      auto& entry = entries[v * static_cast<std::uint64_t>(d) +
                            static_cast<std::uint64_t>(level - 1)];
      if (failures.alive(entry)) {
        continue;  // nothing to repair
      }
      if (!rng.bernoulli(repair_probability)) {
        continue;  // repair has not happened yet (static regime)
      }
      // The entry's class: ids sharing v's first level-1 bits with bit
      // `level` flipped -- a contiguous range once the suffix is freed.
      const int suffix_bits = d - level;
      const NodeId base = (flip_level(v, level, d) >> suffix_bits)
                          << suffix_bits;
      const auto replacement = sample_alive_in_class(
          base, std::uint64_t{1} << suffix_bits, failures, rng);
      if (replacement.has_value()) {
        entry = static_cast<std::uint32_t>(*replacement);
      }
    }
  }
  return std::make_shared<const PrefixTable>(space, std::move(entries));
}

std::shared_ptr<const PrefixTable> repair_prefix_table(
    const PrefixTable& table, const IdSpace& space,
    const FailureScenario& failures, double repair_probability,
    const math::Rng& rng, std::uint64_t stream_id) {
  math::Rng stream = rng.fork(stream_id);
  return repair_prefix_table(table, space, failures, repair_probability,
                             stream);
}

}  // namespace dht::sim
