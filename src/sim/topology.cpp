#include "sim/topology.hpp"

#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace dht::sim {

namespace {

// Parses a sysfs cpulist ("0-3,8,10-11") into CPU ids; returns an empty
// vector on malformed input, which callers treat as detection failure.
std::vector<int> parse_cpulist(const std::string& list) {
  std::vector<int> cpus;
  std::stringstream stream(list);
  std::string range;
  while (std::getline(stream, range, ',')) {
    if (range.empty()) {
      continue;
    }
    const std::size_t dash = range.find('-');
    try {
      if (dash == std::string::npos) {
        cpus.push_back(std::stoi(range));
      } else {
        const int lo = std::stoi(range.substr(0, dash));
        const int hi = std::stoi(range.substr(dash + 1));
        if (lo > hi || hi - lo > 4096) {
          return {};
        }
        for (int cpu = lo; cpu <= hi; ++cpu) {
          cpus.push_back(cpu);
        }
      }
    } catch (...) {
      return {};
    }
  }
  return cpus;
}

Topology detect_topology() {
  Topology topo;
#if defined(__linux__)
  // One node directory per NUMA node; nodes are numbered densely from 0 on
  // every kernel we care about, so probe upward until the first gap.
  for (int node = 0; node < 256; ++node) {
    std::ifstream cpulist("/sys/devices/system/node/node" +
                          std::to_string(node) + "/cpulist");
    if (!cpulist.is_open()) {
      break;
    }
    std::string line;
    std::getline(cpulist, line);
    std::vector<int> cpus = parse_cpulist(line);
    if (!cpus.empty()) {
      topo.node_cpus.push_back(std::move(cpus));
    }
  }
#endif
  if (topo.node_cpus.empty()) {
    // Fallback: one node spanning hardware_concurrency CPUs (at least one).
    const unsigned hw = std::thread::hardware_concurrency();
    std::vector<int> cpus;
    for (unsigned cpu = 0; cpu < (hw == 0 ? 1 : hw); ++cpu) {
      cpus.push_back(static_cast<int>(cpu));
    }
    topo.node_cpus.push_back(std::move(cpus));
  }
  return topo;
}

}  // namespace

const Topology& topology() {
  static const Topology topo = detect_topology();
  return topo;
}

bool pin_current_thread(int cpu) {
#if defined(__linux__)
  if (cpu < 0) {
    return false;
  }
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

int current_numa_node() {
#if defined(__linux__)
  const int cpu = sched_getcpu();
  if (cpu >= 0) {
    const Topology& topo = topology();
    for (std::size_t node = 0; node < topo.node_cpus.size(); ++node) {
      for (const int node_cpu : topo.node_cpus[node]) {
        if (node_cpu == cpu) {
          return static_cast<int>(node);
        }
      }
    }
  }
#endif
  return 0;
}

}  // namespace dht::sim
