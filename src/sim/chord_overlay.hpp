// Ring (Chord) overlay -- paper Section 3.4.
//
// Each node keeps d fingers.  Two construction variants are provided:
//
//  * kDeterministic (default): finger i at clockwise offset exactly
//    2^{d-i} -- classic Chord, the system simulated by Gummadi et al. [2]
//    whose curves the paper's Fig. 6(b) compares against.  With these
//    fingers every finger whose dyadic range lies at or below the current
//    distance is usable, which is precisely the choice structure of the
//    paper's ring Markov chain (m usable fingers in phase m); the
//    analytical p(h, q) is then a true lower bound on routability.
//
//  * kRandomized: finger i uniform in [2^{d-i}, 2^{d-i+1}) -- the
//    randomized Chord variant the paper's Section 3.4 describes for
//    neighbor selection.  Here the largest in-phase finger can overshoot
//    the target, leaving only m-1 usable fingers on some hops, so the
//    measured failed-path fraction can exceed the chain's "upper bound"
//    (see the ablation_ring_bound_gap benchmark).
//
// Forwarding rule (both variants): greedy clockwise -- among alive fingers
// that do not overshoot the target, take the one covering the most
// distance; drop when none exists.
//
// Both variants materialize their fingers into one contiguous row-major
// table at construction (the deterministic variant's entries are the
// closed-form offsets), so the routing hot path and links_into read
// straight out of cache-friendly rows instead of recomputing per hop.  At
// very large d the deterministic table would not fit in memory and the
// overlay falls back to computing fingers on the fly (same values, property
// tested).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/overlay.hpp"

namespace dht::sim {

enum class ChordFingers {
  kDeterministic,
  kRandomized,
};

class ChordOverlay final : public Overlay {
 public:
  /// Builds the finger tables.  `rng` is consumed only by the randomized
  /// variant.  `successor_links` adds a successor list of the s clockwise
  /// neighbors (node+1 .. node+s) as additional forwarding candidates --
  /// the sequential-neighbor knob of the paper's Sections 1-2 (note that
  /// successor 1 coincides with the deterministic finger d).
  ChordOverlay(const IdSpace& space, math::Rng& rng,
               ChordFingers fingers = ChordFingers::kDeterministic,
               int successor_links = 0);

  std::string_view name() const noexcept override { return "ring"; }
  const IdSpace& space() const noexcept override { return space_; }
  ChordFingers finger_variant() const noexcept { return variant_; }
  int successor_links() const noexcept { return successor_links_; }

  std::optional<NodeId> next_hop(NodeId current, NodeId target,
                                 const FailureScenario& failures,
                                 math::Rng& rng) const override;

  std::vector<NodeId> links(NodeId node) const override;
  void links_into(NodeId node, std::vector<NodeId>& out) const override;

  /// The i-th finger of `node` (1-based; finger i covers clockwise distance
  /// in [2^{d-i}, 2^{d-i+1}), exactly 2^{d-i} for the deterministic
  /// variant).
  NodeId finger(NodeId node, int index) const;

  /// Row-major [node][index-1] materialized finger table; empty only for
  /// deterministic overlays too large to materialize (bits() > the
  /// flattening cap), where finger() computes entries on the fly.
  const std::vector<std::uint32_t>& finger_table() const noexcept {
    return fingers_;
  }

 private:
  /// Largest d whose full finger table (2^d * d u32 entries) is
  /// materialized; 2^21 * 21 * 4 B = 168 MiB.
  static constexpr int kFlattenBitsCap = 21;

  IdSpace space_;
  ChordFingers variant_;
  int successor_links_;
  // Row-major [node][index-1] absolute finger ids; see finger_table().
  std::vector<std::uint32_t> fingers_;
};

}  // namespace dht::sim
