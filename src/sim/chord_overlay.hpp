// Ring (Chord) overlay -- paper Section 3.4.
//
// Each node keeps d fingers.  Two construction variants are provided:
//
//  * kDeterministic (default): finger i at clockwise offset exactly
//    2^{d-i} -- classic Chord, the system simulated by Gummadi et al. [2]
//    whose curves the paper's Fig. 6(b) compares against.  With these
//    fingers every finger whose dyadic range lies at or below the current
//    distance is usable, which is precisely the choice structure of the
//    paper's ring Markov chain (m usable fingers in phase m); the
//    analytical p(h, q) is then a true lower bound on routability.
//
//  * kRandomized: finger i uniform in [2^{d-i}, 2^{d-i+1}) -- the
//    randomized Chord variant the paper's Section 3.4 describes for
//    neighbor selection.  Here the largest in-phase finger can overshoot
//    the target, leaving only m-1 usable fingers on some hops, so the
//    measured failed-path fraction can exceed the chain's "upper bound"
//    (see the ablation_ring_bound_gap benchmark).
//
// Forwarding rule (both variants): greedy clockwise -- among alive fingers
// that do not overshoot the target, take the one covering the most
// distance; drop when none exists.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/overlay.hpp"

namespace dht::sim {

enum class ChordFingers {
  kDeterministic,
  kRandomized,
};

class ChordOverlay final : public Overlay {
 public:
  /// Builds the finger tables.  `rng` is consumed only by the randomized
  /// variant.  `successor_links` adds a successor list of the s clockwise
  /// neighbors (node+1 .. node+s) as additional forwarding candidates --
  /// the sequential-neighbor knob of the paper's Sections 1-2 (note that
  /// successor 1 coincides with the deterministic finger d).
  ChordOverlay(const IdSpace& space, math::Rng& rng,
               ChordFingers fingers = ChordFingers::kDeterministic,
               int successor_links = 0);

  std::string_view name() const noexcept override { return "ring"; }
  const IdSpace& space() const noexcept override { return space_; }
  ChordFingers finger_variant() const noexcept { return variant_; }
  int successor_links() const noexcept { return successor_links_; }

  std::optional<NodeId> next_hop(NodeId current, NodeId target,
                                 const FailureScenario& failures,
                                 math::Rng& rng) const override;

  std::vector<NodeId> links(NodeId node) const override;

  /// The i-th finger of `node` (1-based; finger i covers clockwise distance
  /// in [2^{d-i}, 2^{d-i+1}), exactly 2^{d-i} for the deterministic
  /// variant).
  NodeId finger(NodeId node, int index) const;

 private:
  IdSpace space_;
  ChordFingers variant_;
  int successor_links_;
  // Randomized variant only: row-major [node][index-1] absolute finger ids
  // (the deterministic variant computes fingers on the fly).
  std::vector<std::uint32_t> fingers_;
};

}  // namespace dht::sim
