// Shared routing-table construction for the tree and XOR geometries.
//
// Both geometries use the same neighbor rule (paper Section 3.3: "matching
// the first i-1 bits of one's identifier, flipping the ith bit, and choose
// random bits for the rest"); they differ only in the forwarding rule.
// PrefixTable materializes the level-i neighbor of every node, so the
// tree-vs-XOR ablation can run both protocols on the *same* tables.
#pragma once

#include <cstdint>
#include <vector>

#include "math/rng.hpp"
#include "sim/id_space.hpp"
#include "sim/node_id.hpp"

namespace dht::sim {

class PrefixTable {
 public:
  /// Builds the full table: for every node v and level i in [1, d], a
  /// uniformly random node agreeing with v on the first i-1 bits and
  /// differing at bit i.  Deterministic given the rng state.
  PrefixTable(const IdSpace& space, math::Rng& rng);

  /// Adopts pre-built entries (row-major [node][level-1]).  Every entry
  /// must satisfy the class constraint (shared i-1 prefix, flipped bit i);
  /// violations throw.  Used by the repair model (repair.hpp) and tests.
  PrefixTable(const IdSpace& space, std::vector<std::uint32_t> entries);

  /// The level-i neighbor of `node`.  Preconditions: node in space,
  /// 1 <= level <= d.
  NodeId neighbor(NodeId node, int level) const;

  int levels() const noexcept { return d_; }

  /// The raw entries (row-major [node][level-1]); for repair and tests.
  const std::vector<std::uint32_t>& entries() const noexcept {
    return entries_;
  }

 private:
  int d_;
  std::uint64_t size_;
  // Row-major [node][level-1]; 32-bit entries (IdSpace caps d at 26).
  std::vector<std::uint32_t> entries_;
};

}  // namespace dht::sim
