// Exact-integer hop-count accumulator shared by the Monte-Carlo engines.
//
// Unlike a floating-point Welford accumulator, merging two HopStats is
// associative and commutative bit-for-bit, which is what makes the sharded
// engines (parallel_monte_carlo.hpp, churn/trajectory.hpp, and the sparse
// estimator in sparse/flat_sparse.hpp) reproducible independent of thread
// count.  count_ and sum_ are u64: routes are bounded by N - 1 < 2^26
// hops, so the linear sum overflows only after > 2^38 worst-case routes.
// The sum of SQUARES is the tight one -- each route contributes up to
// (2^26)^2 = 2^52, so a u64 would wrap after only ~2^12 worst-case routes.
// sum_sq_ is therefore unsigned __int128: overflow would need
// count * 2^52 > 2^128, i.e. more routes than count_ itself can hold.
#pragma once

#include <cmath>
#include <cstdint>

namespace dht::sim {

class HopStats {
 public:
  void add(std::uint64_t hops) noexcept {
    ++count_;
    sum_ += hops;
    sum_sq_ += static_cast<unsigned __int128>(hops) * hops;
    if (count_ == 1 || hops < min_) {
      min_ = hops;
    }
    if (count_ == 1 || hops > max_) {
      max_ = hops;
    }
  }

  /// Folds another accumulator into this one; exact.
  void merge(const HopStats& other) noexcept {
    if (other.count_ == 0) {
      return;
    }
    if (count_ == 0 || other.min_ < min_) {
      min_ = other.min_;
    }
    if (count_ == 0 || other.max_ > max_) {
      max_ = other.max_;
    }
    count_ += other.count_;
    sum_ += other.sum_;
    sum_sq_ += other.sum_sq_;
  }

  bool operator==(const HopStats&) const = default;

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  unsigned __int128 sum_squares() const noexcept { return sum_sq_; }
  std::uint64_t min() const noexcept { return min_; }
  std::uint64_t max() const noexcept { return max_; }

  double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const noexcept {
    if (count_ < 2) {
      return 0.0;
    }
    const double n = static_cast<double>(count_);
    const double mean_value = static_cast<double>(sum_) / n;
    // sum_sq - n * mean^2, computed from exact integer sums.
    const double centered =
        static_cast<double>(sum_sq_) - n * mean_value * mean_value;
    return (centered < 0.0 ? 0.0 : centered) / (n - 1.0);
  }
  double stddev() const noexcept { return std::sqrt(variance()); }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  unsigned __int128 sum_sq_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace dht::sim
