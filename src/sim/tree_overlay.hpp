// Tree (Plaxton) overlay -- paper Section 3.1.
//
// Forwarding rule: the message must go to the neighbor correcting the
// highest-order differing bit; if that neighbor is dead the message is
// dropped (no fallback, no back-tracking).
#pragma once

#include <memory>

#include "sim/overlay.hpp"
#include "sim/prefix_table.hpp"

namespace dht::sim {

class TreeOverlay final : public Overlay {
 public:
  /// Builds fresh tables from `rng`.
  TreeOverlay(const IdSpace& space, math::Rng& rng);

  /// Shares existing tables (tree-vs-XOR ablation on identical topology).
  TreeOverlay(const IdSpace& space, std::shared_ptr<const PrefixTable> table);

  std::string_view name() const noexcept override { return "tree"; }
  const IdSpace& space() const noexcept override { return space_; }

  std::optional<NodeId> next_hop(NodeId current, NodeId target,
                                 const FailureScenario& failures,
                                 math::Rng& rng) const override;

  std::vector<NodeId> links(NodeId node) const override;
  void links_into(NodeId node, std::vector<NodeId>& out) const override;

  const std::shared_ptr<const PrefixTable>& table() const noexcept {
    return table_;
  }

 private:
  IdSpace space_;
  std::shared_ptr<const PrefixTable> table_;
};

}  // namespace dht::sim
