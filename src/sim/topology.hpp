// Best-effort CPU/NUMA topology detection and worker pinning.
//
// The shard pool (shard_pool.hpp) optionally pins its workers so that
// shard-private state -- churn replica worlds, per-shard estimates --
// stays on the socket that first touched it, and so read-only table
// replicas (flat_sparse.cpp) can be placed per socket.  Detection reads
// the Linux sysfs NUMA layout; on other platforms (or a stripped /sys)
// everything degrades to a single node spanning all CPUs and pinning
// becomes a silent no-op.  Nothing here ever affects results: pinning
// moves work, never changes it.
#pragma once

#include <cstdint>
#include <vector>

namespace dht::sim {

/// A machine's processor layout: every online CPU, grouped by NUMA node.
struct Topology {
  /// Per-NUMA-node lists of logical CPU ids; always at least one node with
  /// at least one CPU (the graceful fallback is one node spanning
  /// hardware_concurrency CPUs).
  std::vector<std::vector<int>> node_cpus;

  unsigned nodes() const noexcept {
    return static_cast<unsigned>(node_cpus.size());
  }
  unsigned cpus() const noexcept {
    unsigned total = 0;
    for (const auto& node : node_cpus) {
      total += static_cast<unsigned>(node.size());
    }
    return total;
  }

  /// The CPU a round-robin-pinned worker should run on: workers are dealt
  /// across nodes first (worker w -> node w mod nodes), then across that
  /// node's CPUs, so shard-private worlds spread over all sockets at every
  /// worker count.
  int cpu_for_worker(unsigned worker) const noexcept {
    const auto& node = node_cpus[worker % node_cpus.size()];
    return node[(worker / node_cpus.size()) % node.size()];
  }
  int node_for_worker(unsigned worker) const noexcept {
    return static_cast<int>(worker % node_cpus.size());
  }
};

/// The detected topology, computed once per process (thread-safe).
const Topology& topology();

/// Pins the calling thread to the given logical CPU.  Returns false -- and
/// leaves the thread's affinity untouched -- where pinning is unsupported
/// (non-Linux) or rejected by the OS; callers treat that as a no-op.
bool pin_current_thread(int cpu);

/// The NUMA node of the CPU the calling thread is currently on, or 0 when
/// that cannot be determined.  After pin_current_thread this identifies the
/// socket whose memory first-touch allocations will land on.
int current_numa_node();

}  // namespace dht::sim
