#include "markov/builders.hpp"

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/strfmt.hpp"
#include "math/stable.hpp"

namespace dht::markov {

namespace {

void check_h_q(int h, double q) {
  DHT_CHECK(h >= 1, "routing chains need h >= 1");
  DHT_CHECK(q >= 0.0 && q <= 1.0, "failure probability q must be in [0, 1]");
}

/// Adds the phase states S_0 .. S_h plus the failure state; returns ids.
struct Skeleton {
  std::vector<StateId> phase;  // phase[i] == S_i
  StateId failure;
};

Skeleton add_skeleton(Chain& chain, int h) {
  Skeleton s;
  s.phase.reserve(static_cast<size_t>(h) + 1);
  for (int i = 0; i <= h; ++i) {
    s.phase.push_back(chain.add_state(strfmt("S%d", i)));
  }
  s.failure = chain.add_state("F");
  return s;
}

RoutingChain finish(Chain&& chain, const Skeleton& s) {
  RoutingChain out;
  out.chain = std::move(chain);
  out.start = s.phase.front();
  out.success = s.phase.back();
  out.failure = s.failure;
  out.chain.validate();
  return out;
}

}  // namespace

RoutingChain build_tree_chain(int h, double q) {
  check_h_q(h, q);
  Chain chain;
  Skeleton s = add_skeleton(chain, h);
  for (int i = 0; i < h; ++i) {
    // The single neighbor that corrects the leftmost bit must be alive.
    chain.add_transition(s.phase[static_cast<size_t>(i)],
                         s.phase[static_cast<size_t>(i) + 1], 1.0 - q);
    chain.add_transition(s.phase[static_cast<size_t>(i)], s.failure, q);
  }
  return finish(std::move(chain), s);
}

RoutingChain build_hypercube_chain(int h, double q) {
  check_h_q(h, q);
  Chain chain;
  Skeleton s = add_skeleton(chain, h);
  for (int i = 0; i < h; ++i) {
    // h - i differing bits remain; any of the h - i correcting neighbors
    // advances, failure requires all of them dead.
    const double fail = math::pow_q(q, static_cast<double>(h - i));
    chain.add_transition(s.phase[static_cast<size_t>(i)],
                         s.phase[static_cast<size_t>(i) + 1], 1.0 - fail);
    chain.add_transition(s.phase[static_cast<size_t>(i)], s.failure, fail);
  }
  return finish(std::move(chain), s);
}

RoutingChain build_xor_chain(int h, double q) {
  check_h_q(h, q);
  Chain chain;
  Skeleton s = add_skeleton(chain, h);
  for (int i = 0; i < h; ++i) {
    const int m = h - i;  // phases still to cross
    // Suboptimal states (i, 1) .. (i, m-1): each suboptimal hop corrects one
    // of the lower-order bits, so the pool of useful neighbors shrinks.
    std::vector<StateId> sub;
    sub.reserve(static_cast<size_t>(m > 0 ? m - 1 : 0));
    for (int j = 1; j <= m - 1; ++j) {
      sub.push_back(chain.add_state(strfmt("(%d,%d)", i, j)));
    }
    const auto state_at = [&](int j) {
      // j == 0 is the phase state itself, j >= 1 the suboptimal states.
      return j == 0 ? s.phase[static_cast<size_t>(i)]
                    : sub[static_cast<size_t>(j) - 1];
    };
    for (int j = 0; j <= m - 1; ++j) {
      const StateId from = state_at(j);
      // Optimal neighbor (corrects the leftmost unresolved bit) alive.
      chain.add_transition(from, s.phase[static_cast<size_t>(i) + 1], 1.0 - q);
      // All m - j still-useful neighbors dead.
      chain.add_transition(from, s.failure,
                           math::pow_q(q, static_cast<double>(m - j)));
      // Optimal dead but one of the m - j - 1 lower-order neighbors alive.
      if (j < m - 1) {
        const double sub_prob =
            q * math::one_minus_pow(q, static_cast<double>(m - j - 1));
        chain.add_transition(from, state_at(j + 1), sub_prob);
      }
    }
  }
  return finish(std::move(chain), s);
}

RoutingChain build_ring_chain(int h, double q) {
  check_h_q(h, q);
  DHT_CHECK(h <= 20, "ring chain has 2^h states; h capped at 20");
  Chain chain;
  Skeleton s = add_skeleton(chain, h);
  for (int i = 0; i < h; ++i) {
    const int m = h - i;
    // In Chord a suboptimal hop preserves all m next-hop choices; the only
    // bound is geometric: at most 2^{m-1} - 1 suboptimal hops fit inside the
    // phase's distance window.
    const long long max_sub = (1LL << (m - 1)) - 1;
    const double fail = math::pow_q(q, static_cast<double>(m));
    const double sub_prob =
        q * math::one_minus_pow(q, static_cast<double>(m - 1));
    std::vector<StateId> sub;
    sub.reserve(static_cast<size_t>(max_sub));
    for (long long j = 1; j <= max_sub; ++j) {
      sub.push_back(chain.add_state(strfmt("(%d,%lld)", i, j)));
    }
    const auto state_at = [&](long long j) {
      return j == 0 ? s.phase[static_cast<size_t>(i)]
                    : sub[static_cast<size_t>(j) - 1];
    };
    for (long long j = 0; j <= max_sub; ++j) {
      const StateId from = state_at(j);
      chain.add_transition(from, s.failure, fail);
      if (j < max_sub) {
        chain.add_transition(from, s.phase[static_cast<size_t>(i) + 1],
                             1.0 - q);
        chain.add_transition(from, state_at(j + 1), sub_prob);
      } else {
        // Last suboptimal slot: the paper's Q(m) series ends here, so the
        // leftover suboptimal mass folds into the advance edge.
        chain.add_transition(from, s.phase[static_cast<size_t>(i) + 1],
                             1.0 - fail);
      }
    }
  }
  return finish(std::move(chain), s);
}

RoutingChain build_symphony_chain(int h, int d, double q, int kn, int ks) {
  check_h_q(h, q);
  DHT_CHECK(q < 1.0, "symphony chain requires q < 1");
  DHT_CHECK(d >= 1 && h <= d, "symphony chain requires 1 <= h <= d");
  DHT_CHECK(kn >= 1 && ks >= 1, "symphony requires kn >= 1 and ks >= 1");
  const double x = static_cast<double>(ks) / static_cast<double>(d);
  const double y = math::pow_q(q, static_cast<double>(kn + ks));
  DHT_CHECK(x + y <= 1.0,
            "symphony model out of domain: ks/d + q^(kn+ks) > 1");
  const double z = 1.0 - x - y;
  const long long max_sub =
      static_cast<long long>(std::ceil(static_cast<double>(d) / (1.0 - q)));

  Chain chain;
  Skeleton s = add_skeleton(chain, h);
  for (int i = 0; i < h; ++i) {
    std::vector<StateId> sub;
    sub.reserve(static_cast<size_t>(max_sub));
    for (long long j = 1; j <= max_sub; ++j) {
      sub.push_back(chain.add_state(strfmt("(%d,%lld)", i, j)));
    }
    const auto state_at = [&](long long j) {
      return j == 0 ? s.phase[static_cast<size_t>(i)]
                    : sub[static_cast<size_t>(j) - 1];
    };
    for (long long j = 0; j <= max_sub; ++j) {
      const StateId from = state_at(j);
      chain.add_transition(from, s.failure, y);
      if (j < max_sub) {
        chain.add_transition(from, s.phase[static_cast<size_t>(i) + 1], x);
        chain.add_transition(from, state_at(j + 1), z);
      } else {
        chain.add_transition(from, s.phase[static_cast<size_t>(i) + 1],
                             1.0 - y);
      }
    }
  }
  return finish(std::move(chain), s);
}

}  // namespace dht::markov
