// Absorption-probability solvers.
//
// Given an absorbing chain, computes the probability that a walk started at
// `start` is eventually absorbed at `target`.  Two independent solvers are
// provided:
//
//  * absorption_probability_dag -- linear-time dynamic programming over a
//    topological order; applicable to the paper's routing chains (acyclic).
//  * absorption_probability_dense -- Gaussian elimination on the transient
//    sub-matrix (I - T) x = b; works for cyclic chains, used to cross-check
//    the DAG solver in tests.
#pragma once

#include "markov/chain.hpp"

namespace dht::markov {

/// DP solver for acyclic chains.  Throws dht::PreconditionError if the chain
/// has a cycle or `target` is not absorbing.
double absorption_probability_dag(const Chain& chain, StateId start,
                                  StateId target);

/// Dense linear-algebra solver; O(n^3).  Throws if `target` is not absorbing
/// or if the transient system is singular (walk can avoid absorption).
double absorption_probability_dense(const Chain& chain, StateId start,
                                    StateId target);

/// Absorption probability together with the conditional expected number of
/// steps E[steps | absorbed at target].  For a routing chain this is the
/// expected hop count of a *successful* route -- the latency axis of the
/// geometry under failure.
struct ConditionalAbsorption {
  double probability = 0.0;
  /// Defined as 0 when probability == 0.
  double expected_steps = 0.0;
};

/// DAG solver for probability and conditional steps in one pass.
/// Preconditions as absorption_probability_dag.
ConditionalAbsorption conditional_absorption_dag(const Chain& chain,
                                                 StateId start,
                                                 StateId target);

}  // namespace dht::markov
