#include "markov/chain.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/strfmt.hpp"

namespace dht::markov {

StateId Chain::add_state(std::string name) {
  edges_.emplace_back();
  names_.push_back(std::move(name));
  return static_cast<StateId>(edges_.size() - 1);
}

void Chain::check_state(StateId s) const {
  DHT_CHECK(s >= 0 && s < state_count(), "state id out of range");
}

void Chain::add_transition(StateId from, StateId to, double probability) {
  check_state(from);
  check_state(to);
  DHT_CHECK(probability >= -1e-15 && probability <= 1.0 + 1e-15,
            strfmt("transition probability %g outside [0, 1]", probability));
  if (probability <= 0.0) {
    return;
  }
  edges_[static_cast<size_t>(from)].push_back(
      Transition{to, std::min(probability, 1.0)});
}

const std::string& Chain::state_name(StateId s) const {
  check_state(s);
  return names_[static_cast<size_t>(s)];
}

const std::vector<Transition>& Chain::transitions_from(StateId s) const {
  check_state(s);
  return edges_[static_cast<size_t>(s)];
}

bool Chain::is_absorbing(StateId s) const {
  check_state(s);
  return edges_[static_cast<size_t>(s)].empty();
}

void Chain::validate(double tolerance) const {
  for (StateId s = 0; s < state_count(); ++s) {
    const auto& out = edges_[static_cast<size_t>(s)];
    if (out.empty()) {
      continue;  // absorbing
    }
    double total = 0.0;
    for (const Transition& t : out) {
      total += t.probability;
    }
    DHT_CHECK(std::abs(total - 1.0) <= tolerance,
              strfmt("state '%s' outgoing probabilities sum to %.12f",
                     state_name(s).c_str(), total));
  }
}

std::optional<std::vector<StateId>> Chain::topological_order() const {
  const int n = state_count();
  std::vector<int> indegree(static_cast<size_t>(n), 0);
  for (StateId s = 0; s < n; ++s) {
    for (const Transition& t : edges_[static_cast<size_t>(s)]) {
      ++indegree[static_cast<size_t>(t.to)];
    }
  }
  std::vector<StateId> ready;
  for (StateId s = 0; s < n; ++s) {
    if (indegree[static_cast<size_t>(s)] == 0) {
      ready.push_back(s);
    }
  }
  std::vector<StateId> order;
  order.reserve(static_cast<size_t>(n));
  while (!ready.empty()) {
    const StateId s = ready.back();
    ready.pop_back();
    order.push_back(s);
    for (const Transition& t : edges_[static_cast<size_t>(s)]) {
      if (--indegree[static_cast<size_t>(t.to)] == 0) {
        ready.push_back(t.to);
      }
    }
  }
  if (static_cast<int>(order.size()) != n) {
    return std::nullopt;  // cycle
  }
  return order;
}

}  // namespace dht::markov
