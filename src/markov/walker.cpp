#include "markov/walker.hpp"

#include "common/check.hpp"

namespace dht::markov {

StateId walk_to_absorption(const Chain& chain, StateId start, math::Rng& rng) {
  StateId current = start;
  for (std::int64_t step = 0; step < (std::int64_t{1} << 31); ++step) {
    if (chain.is_absorbing(current)) {
      return current;
    }
    const double u = rng.uniform01();
    double cumulative = 0.0;
    const auto& out = chain.transitions_from(current);
    StateId next = out.back().to;  // guard against rounding at u ~= 1
    for (const Transition& t : out) {
      cumulative += t.probability;
      if (u < cumulative) {
        next = t.to;
        break;
      }
    }
    current = next;
  }
  DHT_CHECK(false, "walk did not absorb within 2^31 steps");
  return current;  // unreachable
}

math::Proportion estimate_absorption(const Chain& chain, StateId start,
                                     StateId target, std::uint64_t trials,
                                     math::Rng& rng) {
  DHT_CHECK(chain.is_absorbing(target),
            "estimate_absorption target must be absorbing");
  math::Proportion result;
  for (std::uint64_t i = 0; i < trials; ++i) {
    result.record(walk_to_absorption(chain, start, rng) == target);
  }
  return result;
}

}  // namespace dht::markov
