// Monte-Carlo chain walker.
//
// A third, independent estimate of p(h, q): simulate trajectories through a
// routing chain and count absorptions at the success state.  Used by tests
// to cross-check the DP and dense solvers, and by the perf benchmarks.
#pragma once

#include <cstdint>

#include "markov/chain.hpp"
#include "math/rng.hpp"
#include "math/stats.hpp"

namespace dht::markov {

/// Walks the chain from `start` until absorption; returns the absorbing
/// state.  Throws if a state's outgoing probabilities do not cover the
/// sampled uniform (validate() the chain first) or after 2^31 steps.
StateId walk_to_absorption(const Chain& chain, StateId start, math::Rng& rng);

/// Runs `trials` walks and returns the fraction absorbed at `target`.
math::Proportion estimate_absorption(const Chain& chain, StateId start,
                                     StateId target, std::uint64_t trials,
                                     math::Rng& rng);

}  // namespace dht::markov
