// Absorbing discrete-time Markov chains.
//
// Section 4 of the paper derives each geometry's per-phase failure
// probability Q(m) by inspecting a routing Markov chain (Figs. 4(a), 4(b),
// 5(b), 8(a), 8(b)).  This module represents those chains explicitly so that
// the closed-form Q(m) products used by the core library can be validated
// against numerically computed absorption probabilities on the actual chains.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace dht::markov {

using StateId = int;

/// A single outgoing edge of a chain state.
struct Transition {
  StateId to = 0;
  double probability = 0.0;
};

/// A finite Markov chain under construction/inspection.  States with no
/// outgoing transitions are absorbing.  validate() checks stochasticity.
class Chain {
 public:
  /// Adds a state and returns its id.  Names are for diagnostics only.
  StateId add_state(std::string name);

  /// Adds an edge; zero-probability edges are dropped.  Probabilities are
  /// validated in aggregate by validate(), not per edge.
  void add_transition(StateId from, StateId to, double probability);

  int state_count() const noexcept { return static_cast<int>(edges_.size()); }
  const std::string& state_name(StateId s) const;
  const std::vector<Transition>& transitions_from(StateId s) const;

  /// True iff the state has no outgoing edges.
  bool is_absorbing(StateId s) const;

  /// Throws dht::PreconditionError unless every non-absorbing state's
  /// outgoing probabilities sum to 1 within `tolerance` and every
  /// probability lies in [0, 1].
  void validate(double tolerance = 1e-9) const;

  /// Topological order of the states when the chain is acyclic (all routing
  /// chains in the paper are: every transition strictly advances phase or
  /// suboptimal-hop count, or absorbs).  Returns nullopt when a cycle exists.
  std::optional<std::vector<StateId>> topological_order() const;

 private:
  void check_state(StateId s) const;

  std::vector<std::vector<Transition>> edges_;
  std::vector<std::string> names_;
};

}  // namespace dht::markov
