// Constructors for the paper's routing Markov chains.
//
// Each builder materializes the chain that models routing to a target h
// phases away under node-failure probability q, exactly as drawn in the
// paper's figures:
//
//   * Tree      -- Fig. 4(a): S_i --(1-q)--> S_{i+1}, --(q)--> F.
//   * Hypercube -- Fig. 4(b): S_i --(1-q^{h-i})--> S_{i+1}, --(q^{h-i})--> F.
//   * XOR       -- Fig. 5(b): suboptimal states (i, j); correcting a lower
//     order bit consumes one of the m-1 fallback options of the phase.
//   * Ring      -- Fig. 8(a): suboptimal hops keep all m next-hop choices;
//     up to 2^{m-1} suboptimal hops fit inside phase m.
//   * Symphony  -- Fig. 8(b): constant phase-advance probability x = ks/d,
//     failure y = q^{kn+ks}, at most ceil(d/(1-q)) suboptimal hops.
//
// Where the paper's truncated chains leave the last suboptimal state's
// "take another suboptimal hop" probability dangling (ring, symphony), the
// builders fold it into the phase-advance edge; this reproduces the paper's
// Q(m) series exactly (the series only counts failure paths).
#pragma once

#include "markov/chain.hpp"

namespace dht::markov {

/// A built routing chain together with its distinguished states.
struct RoutingChain {
  Chain chain;
  StateId start = 0;    // S_0
  StateId success = 0;  // S_h (absorbing)
  StateId failure = 0;  // F   (absorbing)
};

/// Tree (Plaxton) routing chain for a target h ordered bits away.
/// Preconditions: h >= 1, q in [0, 1].
RoutingChain build_tree_chain(int h, double q);

/// Hypercube (CAN) routing chain for a target at Hamming distance h.
RoutingChain build_hypercube_chain(int h, double q);

/// XOR (Kademlia) routing chain for a target h phases away.
RoutingChain build_xor_chain(int h, double q);

/// Ring (Chord) routing chain for a target h phases away.  State count grows
/// as 2^h (one state per possible suboptimal hop); h is capped at 20.
RoutingChain build_ring_chain(int h, double q);

/// Symphony routing chain for a target h phases away in a d-bit space with
/// kn near neighbors and ks shortcuts.  Preconditions: 1 <= h <= d,
/// kn >= 1, ks >= 1, q in [0, 1), and ks/d + q^{kn+ks} <= 1 (the model's
/// domain; see SymphonyGeometry for the clamped analytical variant).
RoutingChain build_symphony_chain(int h, int d, double q, int kn, int ks);

}  // namespace dht::markov
