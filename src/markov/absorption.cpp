#include "markov/absorption.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "math/summation.hpp"

namespace dht::markov {

double absorption_probability_dag(const Chain& chain, StateId start,
                                  StateId target) {
  DHT_CHECK(chain.is_absorbing(target),
            "absorption target must be an absorbing state");
  const auto order = chain.topological_order();
  DHT_CHECK(order.has_value(),
            "absorption_probability_dag requires an acyclic chain");

  // Walk the topological order backwards: by the time we evaluate a state,
  // every successor already has its absorption probability.
  std::vector<double> prob(static_cast<size_t>(chain.state_count()), 0.0);
  prob[static_cast<size_t>(target)] = 1.0;
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const StateId s = *it;
    if (chain.is_absorbing(s)) {
      continue;  // target already seeded; other absorbing states stay 0
    }
    math::NeumaierSum acc;
    for (const Transition& t : chain.transitions_from(s)) {
      acc.add(t.probability * prob[static_cast<size_t>(t.to)]);
    }
    prob[static_cast<size_t>(s)] = acc.total();
  }
  return std::clamp(prob[static_cast<size_t>(start)], 0.0, 1.0);
}

ConditionalAbsorption conditional_absorption_dag(const Chain& chain,
                                                 StateId start,
                                                 StateId target) {
  DHT_CHECK(chain.is_absorbing(target),
            "absorption target must be an absorbing state");
  const auto order = chain.topological_order();
  DHT_CHECK(order.has_value(),
            "conditional_absorption_dag requires an acyclic chain");

  // prob(v)   = P(absorbed at target | start v)
  // weight(v) = E[steps * 1{absorbed at target} | start v]
  // Recurrence over edges e = (v -> w, p): weight(v) += p (weight(w) +
  // prob(w)) -- the +prob(w) charges the step along e to every eventually
  // successful trajectory through it.
  std::vector<double> prob(static_cast<size_t>(chain.state_count()), 0.0);
  std::vector<double> weight(static_cast<size_t>(chain.state_count()), 0.0);
  prob[static_cast<size_t>(target)] = 1.0;
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const StateId s = *it;
    if (chain.is_absorbing(s)) {
      continue;
    }
    math::NeumaierSum p_acc;
    math::NeumaierSum w_acc;
    for (const Transition& t : chain.transitions_from(s)) {
      const double child_prob = prob[static_cast<size_t>(t.to)];
      p_acc.add(t.probability * child_prob);
      w_acc.add(t.probability *
                (weight[static_cast<size_t>(t.to)] + child_prob));
    }
    prob[static_cast<size_t>(s)] = p_acc.total();
    weight[static_cast<size_t>(s)] = w_acc.total();
  }
  ConditionalAbsorption out;
  out.probability = std::clamp(prob[static_cast<size_t>(start)], 0.0, 1.0);
  if (out.probability > 0.0) {
    out.expected_steps =
        weight[static_cast<size_t>(start)] / out.probability;
  }
  return out;
}

double absorption_probability_dense(const Chain& chain, StateId start,
                                    StateId target) {
  DHT_CHECK(chain.is_absorbing(target),
            "absorption target must be an absorbing state");
  if (start == target) {
    return 1.0;
  }
  if (chain.is_absorbing(start)) {
    return 0.0;
  }

  // Index the transient (non-absorbing) states.
  const int n = chain.state_count();
  std::vector<int> transient_index(static_cast<size_t>(n), -1);
  std::vector<StateId> transient_states;
  for (StateId s = 0; s < n; ++s) {
    if (!chain.is_absorbing(s)) {
      transient_index[static_cast<size_t>(s)] =
          static_cast<int>(transient_states.size());
      transient_states.push_back(s);
    }
  }
  const int t = static_cast<int>(transient_states.size());

  // Solve (I - T) x = b where T is the transient-to-transient transition
  // matrix and b(i) = P(one-step absorption at target from transient i).
  std::vector<std::vector<double>> a(static_cast<size_t>(t),
                                     std::vector<double>(static_cast<size_t>(t), 0.0));
  std::vector<double> b(static_cast<size_t>(t), 0.0);
  for (int i = 0; i < t; ++i) {
    a[static_cast<size_t>(i)][static_cast<size_t>(i)] = 1.0;
    for (const Transition& tr :
         chain.transitions_from(transient_states[static_cast<size_t>(i)])) {
      const int j = transient_index[static_cast<size_t>(tr.to)];
      if (j >= 0) {
        a[static_cast<size_t>(i)][static_cast<size_t>(j)] -= tr.probability;
      } else if (tr.to == target) {
        b[static_cast<size_t>(i)] += tr.probability;
      }
    }
  }

  // Gaussian elimination with partial pivoting.
  for (int col = 0; col < t; ++col) {
    int pivot = col;
    for (int row = col + 1; row < t; ++row) {
      if (std::abs(a[static_cast<size_t>(row)][static_cast<size_t>(col)]) >
          std::abs(a[static_cast<size_t>(pivot)][static_cast<size_t>(col)])) {
        pivot = row;
      }
    }
    DHT_CHECK(
        std::abs(a[static_cast<size_t>(pivot)][static_cast<size_t>(col)]) >
            1e-14,
        "singular transient system: some state never reaches absorption");
    std::swap(a[static_cast<size_t>(col)], a[static_cast<size_t>(pivot)]);
    std::swap(b[static_cast<size_t>(col)], b[static_cast<size_t>(pivot)]);
    const double diag = a[static_cast<size_t>(col)][static_cast<size_t>(col)];
    for (int row = col + 1; row < t; ++row) {
      const double factor =
          a[static_cast<size_t>(row)][static_cast<size_t>(col)] / diag;
      if (factor == 0.0) {
        continue;
      }
      for (int k = col; k < t; ++k) {
        a[static_cast<size_t>(row)][static_cast<size_t>(k)] -=
            factor * a[static_cast<size_t>(col)][static_cast<size_t>(k)];
      }
      b[static_cast<size_t>(row)] -= factor * b[static_cast<size_t>(col)];
    }
  }
  std::vector<double> x(static_cast<size_t>(t), 0.0);
  for (int row = t - 1; row >= 0; --row) {
    double rhs = b[static_cast<size_t>(row)];
    for (int k = row + 1; k < t; ++k) {
      rhs -= a[static_cast<size_t>(row)][static_cast<size_t>(k)] *
             x[static_cast<size_t>(k)];
    }
    x[static_cast<size_t>(row)] =
        rhs / a[static_cast<size_t>(row)][static_cast<size_t>(row)];
  }
  const int start_idx = transient_index[static_cast<size_t>(start)];
  return std::clamp(x[static_cast<size_t>(start_idx)], 0.0, 1.0);
}

}  // namespace dht::markov
