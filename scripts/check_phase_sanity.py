#!/usr/bin/env python3
"""Sanity-check perf_simulator phase profiles against wall-clock time.

The phase_*_s columns are CPU-seconds summed across shard workers, so at
threads == 1 -- where the shards run sequentially on the measuring thread
-- their sum must come back to the row's wall-clock `seconds` column.  A
large gap means a phase timer is missing (work the profile silently
omits), double-counting (nested timers on the same work), or attributing
another row's time (a profile reused across rows without resetting).

Rows are checked when they carry threads == 1 AND a non-zero phase sum;
serial baseline rows (seed / virtual paths) legitimately emit all-zero
profiles and are skipped, as are multi-threaded rows, where CPU-seconds
exceed wall-clock by design.

The tolerance is 10% relative plus a small absolute epsilon: the epsilon
absorbs timer granularity and the few uninstrumented microseconds between
phases on sub-millisecond rows, the relative band catches real structural
gaps on rows long enough to measure.

Usage: check_phase_sanity.py FILE.jsonl [--rel 0.10] [--abs 0.05]
Exit status: 0 when every eligible row passes, 1 otherwise.
"""

import argparse
import json
import sys


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("path")
    parser.add_argument(
        "--rel",
        type=float,
        default=0.10,
        help="relative tolerance on |phase_sum - seconds| (default 0.10)",
    )
    parser.add_argument(
        "--abs",
        dest="abs_eps",
        type=float,
        default=0.05,
        help="absolute tolerance in seconds (default 0.05)",
    )
    args = parser.parse_args()

    failures = 0
    checked = 0
    with open(args.path) as f:
        for lineno, line in enumerate(f, start=1):
            if not line.strip():
                continue
            row = json.loads(line)
            if row.get("threads") != 1:
                continue
            seconds = row.get("seconds")
            if not isinstance(seconds, (int, float)):
                continue
            phase_sum = sum(
                v
                for k, v in row.items()
                if k.startswith("phase_") and k.endswith("_s")
            )
            if phase_sum == 0.0:
                continue  # serial baseline row: profile intentionally off
            checked += 1
            gap = abs(phase_sum - seconds)
            allowed = args.rel * seconds + args.abs_eps
            if gap > allowed:
                failures += 1
                section = row.get("section", "static")
                print(
                    f"FAIL: {args.path}:{lineno} section {section!r}: "
                    f"phase sum {phase_sum:.6f}s vs wall {seconds:.6f}s "
                    f"(gap {gap:.6f}s > allowed {allowed:.6f}s) -- a "
                    "phase timer is missing, nested, or double-counted",
                    file=sys.stderr,
                )
    if failures:
        print(f"FAIL: {failures} row(s) out of tolerance", file=sys.stderr)
        return 1
    print(
        f"OK: {checked} single-threaded row(s) have phase profiles "
        "consistent with wall-clock"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
