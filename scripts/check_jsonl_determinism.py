#!/usr/bin/env python3
"""Compare two perf_simulator JSONL runs for result determinism.

The parallel engines promise bit-identical *results* at any thread count;
only scheduling-dependent fields (timings, throughputs, the thread count
itself) may differ between a 2-thread and an 8-thread run.  This script
pairs the two files row by row WITHIN each section and fails on any
difference outside the exempt set -- a routability, hop-statistic, load or
cache-rate drift between thread counts is a determinism bug, full stop.

Rows are grouped by their "section" field (rows without one form the
"static" section) before pairing.  A section present in only one file is
reported as exactly that -- a configuration mismatch (a section disabled by
flags such as --sparse-n-max 0 on one side), not as the off-by-hundreds
row-count noise the old line-by-line pairing produced.

Every numeric value must also be finite -- INCLUDING exempt and ignored
columns: printf renders uninitialized or divided-by-zero doubles as bare
nan/inf, which is both invalid JSON and a sign the engine emitted garbage,
so it fails the check with the offending line named.  Exemption waives the
equality comparison, never the sanity gate.

--ignore-columns REGEX extends the exempt set with every column whose name
fully matches REGEX (repeatable; matches are unioned).  CI uses it to
waive the phase-timing columns ('phase_.*_s'), which are CPU-seconds and
scheduling-dependent by nature -- while the failure-taxonomy counts
(fail_*, hop_limit_hits) stay under the exact-match gate, where they
belong: they are integer counters merged in shard order.

Usage: check_jsonl_determinism.py [--ignore-columns REGEX]... A.jsonl B.jsonl
Exit status: 0 identical (modulo exempt fields), 1 otherwise.
"""

import argparse
import json
import math
import re
import sys

# Scheduling-dependent by design; everything else must match exactly.
EXEMPT = {
    "threads",
    "seconds",
    "build_seconds",
    "routes_per_sec",
    "route_phase_routes_per_sec",
    "shard_rounds_per_sec",
    "speedup_vs_seed",
    "speedup_vs_virtual",
    "identical_across_threads",  # trivially true in a single-entry sweep
}


def is_exempt(key, ignore_patterns):
    return key in EXEMPT or any(p.fullmatch(key) for p in ignore_patterns)


def load_sections(path, ignore_patterns):
    """Parses one JSONL file into {section: [canonical rows]}, first-seen
    section order preserved.  Canonical rows drop the exempt fields.  Exits
    with a diagnostic on malformed JSON or non-finite numerics (the
    load_cv/cache_hit_rate/availability columns are doubles and must never
    be nan/inf); the finiteness gate covers exempt and ignored columns
    too."""
    sections = {}
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            if not line.strip():
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as err:
                print(
                    f"FAIL: {path}:{lineno} is not valid JSON ({err}); "
                    "bare nan/inf from printf means the engine emitted a "
                    "non-finite metric",
                    file=sys.stderr,
                )
                sys.exit(1)
            for key, value in row.items():
                if isinstance(value, float) and not math.isfinite(value):
                    print(
                        f"FAIL: {path}:{lineno} field {key!r} is "
                        f"non-finite ({value})",
                        file=sys.stderr,
                    )
                    sys.exit(1)
            canonical = {
                k: v
                for k, v in row.items()
                if not is_exempt(k, ignore_patterns)
            }
            sections.setdefault(row.get("section", "static"), []).append(
                canonical
            )
    return sections


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--ignore-columns",
        action="append",
        default=[],
        metavar="REGEX",
        help="additionally exempt columns whose name fully matches REGEX "
        "(repeatable); the nan/inf gate still applies to them",
    )
    parser.add_argument("path_a")
    parser.add_argument("path_b")
    args = parser.parse_args()
    try:
        ignore_patterns = [re.compile(p) for p in args.ignore_columns]
    except re.error as err:
        print(f"FAIL: bad --ignore-columns regex: {err}", file=sys.stderr)
        return 2
    path_a, path_b = args.path_a, args.path_b
    sections_a = load_sections(path_a, ignore_patterns)
    sections_b = load_sections(path_b, ignore_patterns)

    # Differing section sets are a configuration mismatch (one run had a
    # section disabled), not a determinism failure of the shared rows --
    # but the comparison is meaningless, so diagnose and fail loudly.
    only_a = [s for s in sections_a if s not in sections_b]
    only_b = [s for s in sections_b if s not in sections_a]
    if only_a or only_b:
        for section in only_a:
            print(
                f"FAIL: section {section!r} appears only in {path_a}; the "
                f"{path_b} run disabled it (flag mismatch, e.g. "
                "--sparse-n-max 0 or --*-rounds 0)",
                file=sys.stderr,
            )
        for section in only_b:
            print(
                f"FAIL: section {section!r} appears only in {path_b}; the "
                f"{path_a} run disabled it (flag mismatch, e.g. "
                "--sparse-n-max 0 or --*-rounds 0)",
                file=sys.stderr,
            )
        return 1

    failures = 0
    total = 0
    for section, rows_a in sections_a.items():
        rows_b = sections_b[section]
        if len(rows_a) != len(rows_b):
            print(
                f"FAIL: section {section!r} has {len(rows_a)} rows in "
                f"{path_a} but {len(rows_b)} in {path_b} (different sweep "
                "grids or thread lists?)",
                file=sys.stderr,
            )
            failures += 1
            continue
        total += len(rows_a)
        for i, (ca, cb) in enumerate(zip(rows_a, rows_b), start=1):
            if ca != cb:
                failures += 1
                diff_keys = sorted(
                    k
                    for k in set(ca) | set(cb)
                    if ca.get(k) != cb.get(k)
                )
                print(
                    f"FAIL: section {section!r} row {i} differs in "
                    f"{diff_keys}",
                    file=sys.stderr,
                )
                print(f"  {path_a}: {ca}", file=sys.stderr)
                print(f"  {path_b}: {cb}", file=sys.stderr)
    if failures:
        print(f"FAIL: {failures} mismatch(es)", file=sys.stderr)
        return 1
    print(
        f"OK: {total} rows across {len(sections_a)} section(s) identical "
        "modulo scheduling fields"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
