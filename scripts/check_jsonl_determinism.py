#!/usr/bin/env python3
"""Compare two perf_simulator JSONL runs for result determinism.

The parallel engines promise bit-identical *results* at any thread count;
only scheduling-dependent fields (timings, throughputs, the thread count
itself) may differ between a 2-thread and an 8-thread run.  This script
pairs the two files line by line and fails on any difference outside the
exempt set -- a routability or hop-statistic drift between thread counts is
a determinism bug, full stop.

Usage: check_jsonl_determinism.py A.jsonl B.jsonl
Exit status: 0 identical (modulo exempt fields), 1 otherwise.
"""

import json
import sys

# Scheduling-dependent by design; everything else must match exactly.
EXEMPT = {
    "threads",
    "seconds",
    "build_seconds",
    "routes_per_sec",
    "shard_rounds_per_sec",
    "speedup_vs_seed",
    "speedup_vs_virtual",
    "identical_across_threads",  # trivially true in a single-entry sweep
}


def canonical(line):
    row = json.loads(line)
    return {k: v for k, v in row.items() if k not in EXEMPT}


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 1
    path_a, path_b = sys.argv[1], sys.argv[2]
    with open(path_a) as fa, open(path_b) as fb:
        lines_a = [l for l in fa if l.strip()]
        lines_b = [l for l in fb if l.strip()]
    if len(lines_a) != len(lines_b):
        print(
            f"FAIL: {path_a} has {len(lines_a)} rows, "
            f"{path_b} has {len(lines_b)}",
            file=sys.stderr,
        )
        return 1
    failures = 0
    for i, (a, b) in enumerate(zip(lines_a, lines_b), start=1):
        ca, cb = canonical(a), canonical(b)
        if ca != cb:
            failures += 1
            diff_keys = sorted(
                k
                for k in set(ca) | set(cb)
                if ca.get(k) != cb.get(k)
            )
            print(f"FAIL: row {i} differs in {diff_keys}", file=sys.stderr)
            print(f"  {path_a}: {ca}", file=sys.stderr)
            print(f"  {path_b}: {cb}", file=sys.stderr)
    if failures:
        print(f"FAIL: {failures} row(s) differ", file=sys.stderr)
        return 1
    print(f"OK: {len(lines_a)} rows identical modulo scheduling fields")
    return 0


if __name__ == "__main__":
    sys.exit(main())
