#!/usr/bin/env python3
"""Paired interleaved A/B benchmark runner for perf_simulator-style JSONL.

Benchmarking a perf change by timing binary A once and binary B once
confounds the change with machine drift (thermal state, page cache,
background load).  This runner de-confounds it the standard way:

 * A and B run INTERLEAVED (A B A B ...), so slow drift hits both arms
   about equally instead of landing on whichever ran second.
 * Each arm runs `--repeats` times and every metric keeps its BEST
   (maximum throughput / minimum seconds) across repeats -- best-of-N is
   the usual estimator for the noise-free cost of a deterministic
   workload, since interference can only ever make a run slower.
 * Rows are paired by (section, key columns) within each run, the same
   discipline as check_jsonl_determinism.py, and the speedup reported per
   row plus as a geometric mean over the selected rows.

Usage:
  perf_ab.py --a ./build-baseline/perf_simulator --b ./build/perf_simulator
             [--args "--threads 1 --pairs 0 ..."] [--repeats 3]
             [--metric routes_per_sec] [--section sparse_churn]
             [--filter key=value ...] [--out BENCH.json]

The A/B binaries run with identical arguments.  --filter restricts the
compared rows (e.g. --filter inflight=false keeps only sync-mode rows).
Output: a human summary on stderr and one JSON record on stdout (or to
--out), with per-row best metrics for both arms and the geomean speedup.
Exit status: 0 on success, 1 if no rows matched or a run failed.
"""

import argparse
import json
import math
import subprocess
import sys

# Identity of a row within a section: the configuration axes the repo's
# benches vary, so re-runs pair up even if row order shifts.
KEY_FIELDS = [
    "section", "geometry", "mode", "bits", "n", "n0", "pairs", "succ",
    "inflight", "batched", "k", "session", "replicas", "cache_entries",
    "threads",
]


def to_str(value):
    """JSON-style stringification, so --filter inflight=false matches the
    literal that appears in the JSONL (Python would render it 'False')."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return "null"
    return str(value)


def row_key(row, ignored):
    return tuple((f, to_str(row.get(f)))
                 for f in KEY_FIELDS if f in row and f not in ignored)


def parse_rows(stdout, section, filters, ignored):
    rows = {}
    for line in stdout.splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            continue
        if section and row.get("section") != section:
            continue
        if any(to_str(row.get(k)) != v for k, v in filters):
            continue
        rows[row_key(row, ignored)] = row
    return rows


def run_arm(binary, args):
    proc = subprocess.run([binary] + args, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(f"FAIL: {binary} exited {proc.returncode}\n")
        sys.stderr.write(proc.stderr)
        sys.exit(1)
    return proc.stdout


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--a", required=True, help="baseline binary (arm A)")
    ap.add_argument("--b", required=True, help="candidate binary (arm B)")
    ap.add_argument("--args", default="", help="arguments for both arms")
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--metric", default="routes_per_sec",
                    help="row metric to compare (higher is better)")
    ap.add_argument("--section", default="",
                    help="keep only rows of this JSONL section")
    ap.add_argument("--filter", action="append", default=[],
                    metavar="KEY=VALUE",
                    help="keep only rows where KEY stringifies to VALUE")
    ap.add_argument("--ignore", action="append", default=[], metavar="KEY",
                    help="drop KEY from the pairing identity -- for columns "
                         "one arm's (older) schema does not emit yet")
    ap.add_argument("--out", default="", help="write the JSON record here")
    opts = ap.parse_args()

    filters = []
    for item in opts.filter:
        key, _, value = item.partition("=")
        filters.append((key, value))
    ignored = frozenset(opts.ignore)
    args = opts.args.split()

    best = {"a": {}, "b": {}}
    for repeat in range(max(1, opts.repeats)):
        # Interleave the arms so machine drift is shared, not attributed.
        for arm, binary in (("a", opts.a), ("b", opts.b)):
            sys.stderr.write(
                f"[perf_ab] repeat {repeat + 1}/{opts.repeats} arm "
                f"{arm.upper()}: {binary}\n")
            rows = parse_rows(run_arm(binary, args), opts.section, filters,
                              ignored)
            for key, row in rows.items():
                metric = row.get(opts.metric)
                if not isinstance(metric, (int, float)):
                    continue
                kept = best[arm].get(key)
                if kept is None or metric > kept["metric"]:
                    best[arm][key] = {"metric": metric, "row": row}

    shared = sorted(set(best["a"]) & set(best["b"]))
    if not shared:
        sys.stderr.write("FAIL: no comparable rows between the arms\n")
        return 1
    records = []
    log_sum = 0.0
    for key in shared:
        a = best["a"][key]["metric"]
        b = best["b"][key]["metric"]
        speedup = b / a if a > 0 else float("inf")
        log_sum += math.log(speedup)
        row = best["b"][key]["row"]
        records.append({
            "key": {f: v for f, v in key},
            "baseline": a,
            "candidate": b,
            "speedup": speedup,
        })
        label = " ".join(f"{f}={v}" for f, v in key)
        sys.stderr.write(
            f"[perf_ab] {label}: {a:.1f} -> {b:.1f} ({speedup:.3f}x)\n")
    geomean = math.exp(log_sum / len(shared))
    sys.stderr.write(f"[perf_ab] geomean speedup over {len(shared)} rows: "
                     f"{geomean:.3f}x\n")
    record = {
        "bench": "perf_ab",
        "metric": opts.metric,
        "section": opts.section or None,
        "filters": [f"{k}={v}" for k, v in filters],
        "ignored_key_fields": sorted(ignored),
        "repeats": opts.repeats,
        "a": opts.a,
        "b": opts.b,
        "args": opts.args,
        "rows": records,
        "geomean_speedup": geomean,
    }
    text = json.dumps(record, indent=2) + "\n"
    if opts.out:
        with open(opts.out, "w") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
