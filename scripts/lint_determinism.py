#!/usr/bin/env python3
"""Repo-specific determinism lint.

Every result this repository reports rests on one invariant: estimates are
exact-integer, shard-order-merged, and bit-identical at any thread count.
The dynamic gates (2-vs-8-thread JSONL diffs, golden-pinned counters) catch
violations only probabilistically -- a wall-clock read or an unordered-map
iteration can survive thousands of runs before it flips a golden.  This
checker fails CI on the bug *classes* instead:

  wallclock      rand()/srand()/std::random_device/time()/clock()/
                 gettimeofday/clock_gettime and std::chrono wall-clock
                 reads outside src/obs/ and bench/.  All randomness must
                 come from math/rng.hpp lineages; all timing belongs to
                 the observability layer or the bench harnesses.
  unordered-iter std::unordered_map / std::unordered_set mentioned inside
                 a function whose name contains `merge` or `estimate`.
                 Hash-container iteration order is unspecified, so any
                 merge/estimate path touching one is order-dependent by
                 construction.
  fp-merge       float / double inside a member function named `merge`,
                 or a reference there to a floating-point data member of
                 the enclosing class.
                 Merges must stay exact-integer: FP addition is not
                 associative, so shard-order reduction would stop being
                 bit-identical across thread counts.
  atomic-order   an atomic operation (.load/.store/.exchange/.fetch_*/
                 .compare_exchange_*) without an explicit std::memory_order
                 argument.  The concurrency contract here is "commutative
                 relaxed adds only"; every deviation must be spelled out
                 (and is then visible to review and to ThreadSanitizer
                 triage).
  kernel-global  mutable namespace-scope state in a kernel translation
                 unit (*.cpp under src/sim, src/sparse, src/churn,
                 src/core).  Kernel TUs are re-entered concurrently by the
                 shard pool; any mutable global is either a data race or a
                 hidden cross-shard channel that breaks replayability.

Escape hatch: an intentional exception carries, on the same line or the
line directly above, a self-documenting annotation

    // lint:allow(<rule>) <reason>

The reason is mandatory; an annotation without one is itself reported
(rule `allow-missing-reason`).

Exit status 0 when no findings, 1 otherwise.  `--json` emits findings as
one JSON object per line for tooling.
"""

import argparse
import json
import os
import re
import sys

RULES = {
    "wallclock": "wall-clock / ambient randomness outside src/obs/ and bench/",
    "unordered-iter": "unordered container in a merge/estimate path",
    "fp-merge": "floating point inside a merge() member",
    "atomic-order": "atomic operation without an explicit std::memory_order",
    "kernel-global": "mutable namespace-scope state in a kernel TU",
    "allow-missing-reason": "lint:allow annotation without a reason",
}

# Directories scanned, relative to the repo root.
SCAN_DIRS = ("src", "bench", "examples")
SOURCE_EXTENSIONS = (".cpp", ".hpp", ".h", ".cc")

# Path prefixes (forward-slash, root-relative) exempt from `wallclock`:
# the observability layer exists to read clocks, and the bench harnesses
# time themselves by design.
WALLCLOCK_EXEMPT_PREFIXES = ("src/obs/", "bench/")

# Kernel TUs for `kernel-global`: translation units the shard pool
# re-enters concurrently.
KERNEL_TU_PREFIXES = ("src/sim/", "src/sparse/", "src/churn/", "src/core/")

WALLCLOCK_PATTERNS = [
    re.compile(p)
    for p in (
        r"\bstd::random_device\b",
        r"(?<![\w:])s?rand\s*\(",          # rand() / srand(); not strtoull etc.
        r"(?<![\w:.>])time\s*\(",          # time(NULL)-style; not world.time(...)
        r"(?<![\w:.>])clock\s*\(\s*\)",
        r"\bgettimeofday\s*\(",
        r"\bclock_gettime\s*\(",
        r"\bstd::chrono::(steady_clock|system_clock|high_resolution_clock)::now\b",
    )
]

UNORDERED_PATTERN = re.compile(r"\bstd::unordered_(map|set|multimap|multiset)\b")
FP_PATTERN = re.compile(r"\b(float|double)\b")
MERGE_ESTIMATE_NAME = re.compile(r"(merge|estimate)", re.IGNORECASE)

# Atomic member calls.  `.load(` / `.store(` etc. are rare enough as
# non-atomic method names in this codebase that a match is worth a look;
# false positives take a lint:allow with the reason saying so.
ATOMIC_CALL = re.compile(
    r"\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or"
    r"|fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\("
)
MEMORY_ORDER = re.compile(r"\bstd::memory_order")

ALLOW_PATTERN = re.compile(r"//\s*lint:allow\(([\w-]+)\)\s*(.*)")

CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "do", "else"}


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blank out comments, string and char literals, preserving newlines
    and column positions so line numbers survive.  lint:allow annotations
    are collected from comments before they are blanked."""
    out = []
    allows = {}  # line number -> (rule, reason, annotation line)
    i = 0
    n = len(text)
    line = 1
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_delim = ""
    comment_buf = []
    comment_line = 0

    def flush_comment():
        buf = "".join(comment_buf)
        m = ALLOW_PATTERN.search("//" + buf if state == "line_comment" else buf)
        if m:
            allows[comment_line] = (m.group(1), m.group(2).strip())
        comment_buf.clear()

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                comment_line = line
                comment_buf.clear()
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                comment_line = line
                comment_buf.clear()
                out.append("  ")
                i += 2
                continue
            if c == '"':
                if out and re.search(r"R$", "".join(out[-8:]).strip()):
                    m = re.match(r'R"([^(]*)\(', text[i - 1 : i + 18])
                    if m:
                        state = "raw"
                        raw_delim = ")" + m.group(1) + '"'
                        out.append(c)
                        i += 1
                        continue
                state = "string"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                flush_comment()
                state = "code"
                out.append(c)
            else:
                comment_buf.append(c)
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                flush_comment()
                state = "code"
                out.append("  ")
                i += 2
                continue
            comment_buf.append(c)
            out.append(c if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
                if nxt == "\n":
                    line += 1
                    out[-1] = " \n"
                continue
            if c == '"':
                state = "code"
                out.append(c)
            else:
                out.append(c if c == "\n" else " ")
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "raw":
            if text.startswith(raw_delim, i):
                state = "code"
                out.append(raw_delim)
                i += len(raw_delim)
                continue
            out.append(c if c == "\n" else " ")
        if c == "\n":
            line += 1
        i += 1
    if state == "line_comment":
        flush_comment()
    return "".join(out), allows


def classify_brace(header):
    """Classify the construct a `{` opens from the statement text before
    it: 'namespace', 'class', 'function' (name attached), or 'other'."""
    header = header.strip()
    if re.search(r"\bnamespace\b[^=]*$", header):
        return ("namespace", None)
    cm = re.search(r"\b(?:class|struct|union|enum)\s+(?:\w+\s+)*?([\w:]+)"
                   r"(?:\s*final)?(?:\s*:[^;{]*)?$", header)
    if cm:
        return ("class", cm.group(1).split("::")[-1])
    if re.search(r"\b(class|struct|union|enum)\b(?!.*[)(])[^;]*$", header):
        return ("class", None)
    # A function definition header ends with a parameter list followed by
    # optional qualifiers / trailing return / initializer list.
    m = re.search(
        r"([~\w][\w:~]*)\s*(<[^<>]*>)?\s*\(",
        header,
    )
    if m and header.rstrip().endswith((")", "const", "noexcept", "override",
                                       "final", "try")) or (
        m and re.search(r"->\s*[\w:<>&*\s]+$", header)
    ) or (m and re.search(r"\)\s*:\s*[\w_]", header)):
        name = m.group(1).split("::")[-1]
        if name in CONTROL_KEYWORDS:
            return ("other", None)
        return ("function", name)
    return ("other", None)


class Scope:
    def __init__(self, kind, name=None):
        self.kind = kind  # namespace | class | function | other
        self.name = name


def line_of(pos, line_starts):
    """1-based line for offset `pos` given sorted line start offsets."""
    lo, hi = 0, len(line_starts) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if line_starts[mid] <= pos:
            lo = mid
        else:
            hi = mid - 1
    return lo + 1


def lint_text(rel_path, raw_text):
    """Yield Finding objects for one file.  `rel_path` is root-relative
    with forward slashes; path-scoped rules key off it."""
    code, allows = strip_comments_and_strings(raw_text)
    line_starts = [0]
    for m in re.finditer(r"\n", code):
        line_starts.append(m.end())

    findings = []
    used_allows = set()

    def allowed(lineno, rule):
        for cand in (lineno, lineno - 1):
            entry = allows.get(cand)
            if entry and entry[0] == rule:
                used_allows.add(cand)
                if not entry[1]:
                    findings.append(
                        Finding(rel_path, cand, "allow-missing-reason",
                                f"lint:allow({rule}) needs a reason"))
                return True
        return False

    def report(pos, rule, message):
        lineno = line_of(pos, line_starts)
        if not allowed(lineno, rule):
            findings.append(Finding(rel_path, lineno, rule, message))

    # ---- wallclock ------------------------------------------------------
    if not rel_path.startswith(WALLCLOCK_EXEMPT_PREFIXES):
        for pat in WALLCLOCK_PATTERNS:
            for m in pat.finditer(code):
                report(
                    m.start(), "wallclock",
                    f"`{m.group(0).strip()}` -- ambient time/randomness is "
                    "nondeterministic; use math/rng.hpp lineages, or move "
                    "timing into src/obs//bench")

    # ---- scope-dependent rules ------------------------------------------
    # One linear pass maintaining a scope stack.  It records function-body
    # spans (for the merge/estimate context rules), class-body spans plus
    # each class's floating-point data members (for the member-accumulation
    # half of fp-merge), and checks namespace-scope statements in kernel
    # TUs as they close.
    stack = []
    is_kernel_tu = rel_path.startswith(KERNEL_TU_PREFIXES) and rel_path.endswith(
        (".cpp", ".cc"))
    stmt_start = 0
    header_start = 0
    fn_spans = []      # (start, end, function name)
    class_spans = []   # (start, end, class name)
    open_fns = []
    open_classes = []
    fp_members = {}    # class name -> set of fp member names

    def namespace_scope_only():
        return all(s.kind == "namespace" for s in stack)

    def directly_in_class():
        return stack and stack[-1].kind == "class" and stack[-1].name

    def check_statement(text, pos):
        stmt = text.strip()
        if not stmt or stmt.startswith("#"):
            return
        # Point findings (and lint:allow adjacency) at the first token of
        # the statement, not at the whitespace after the previous one.
        pos += len(text) - len(text.lstrip())
        # Floating-point data members of the innermost class.
        if directly_in_class():
            dm = re.match(
                r"(?:static\s+|mutable\s+)*(?:long\s+)?(float|double)\s+"
                r"(.+)$", stmt, re.DOTALL)
            if dm and "(" not in stmt:
                declarators = re.sub(r"\[[^\]]*\]", "", dm.group(2))
                # Cut at the first initializer: `a = 1, b = 2` keeps only
                # `a`, an accepted imprecision for a lint.
                declarators = re.split(r"[={]", declarators, 1)[0]
                names = []
                for decl in declarators.split(","):
                    decl = decl.strip().lstrip("*&")
                    if re.fullmatch(r"[A-Za-z_]\w*", decl):
                        names.append(decl)
                if names:
                    fp_members.setdefault(stack[-1].name, set()).update(names)
            return
        # Mutable namespace-scope state in kernel TUs.
        if not is_kernel_tu or not namespace_scope_only():
            return
        first = stmt.split(None, 1)[0]
        if first in {"using", "typedef", "template", "extern", "friend",
                     "static_assert", "namespace", "class", "struct",
                     "union", "enum", "return"}:
            return
        if re.search(r"\b(const|constexpr|constinit)\b", stmt):
            return
        # Function declarations / prototypes end with `)` (possibly plus
        # qualifiers) and carry no initializer.
        if "=" not in stmt and re.search(r"\)\s*(noexcept\s*)?$", stmt):
            return
        # A variable definition: optional static/thread_local, a type, a
        # name, then an initializer or a bare `;`-terminated declarator.
        if re.match(
            r"(static\s+|thread_local\s+)*[\w:<>,*&\s\[\]]+?[\w\]]\s*"
            r"(=|\{|;?$)", stmt,
        ) and not re.search(r"\boperator\b", stmt):
            report(pos, "kernel-global",
                   "mutable namespace-scope state in a kernel TU -- shard "
                   "workers re-enter this TU concurrently; make it const/"
                   "constexpr, function-local, or per-shard")

    i = 0
    n = len(code)
    while i < n:
        c = code[i]
        if c == "{":
            kind, name = classify_brace(code[header_start:i])
            stack.append(Scope(kind, name))
            if kind == "function":
                open_fns.append((i, name))
            elif kind == "class":
                open_classes.append((i, name))
            if kind != "other":
                header_start = i + 1
                stmt_start = i + 1
        elif c == "}":
            if stack:
                top = stack.pop()
                if top.kind == "function" and open_fns:
                    start, name = open_fns.pop()
                    fn_spans.append((start, i, name))
                elif top.kind == "class" and open_classes:
                    start, name = open_classes.pop()
                    class_spans.append((start, i, name))
                if top.kind != "other":
                    header_start = i + 1
                    stmt_start = i + 1
            else:
                header_start = i + 1
                stmt_start = i + 1
        elif c == ";":
            check_statement(code[stmt_start:i], stmt_start)
            stmt_start = i + 1
            header_start = i + 1
        i += 1

    def enclosing(spans, pos):
        best = None
        for start, end, name in spans:
            if start <= pos <= end and (best is None or start > best[0]):
                best = (start, name)
        return best[1] if best else None

    # ---- unordered-iter --------------------------------------------------
    for m in UNORDERED_PATTERN.finditer(code):
        fn = enclosing(fn_spans, m.start())
        if fn and MERGE_ESTIMATE_NAME.search(fn):
            report(
                m.start(), "unordered-iter",
                f"std::unordered_{m.group(1)} inside `{fn}` -- hash-container "
                "iteration order is unspecified; merge/estimate paths must "
                "use ordered or index-addressed containers")

    # ---- fp-merge --------------------------------------------------------
    # (a) float/double tokens declared or named inside a merge() body.
    for m in FP_PATTERN.finditer(code):
        fn = enclosing(fn_spans, m.start())
        if fn == "merge":
            report(
                m.start(), "fp-merge",
                f"`{m.group(1)}` inside a merge() member -- FP addition is "
                "not associative, so shard-order reduction stops being "
                "bit-identical; keep merges exact-integer")
    # (b) references to a floating-point data member of the enclosing
    # class inside that class's merge() body -- catches accumulation that
    # never names the type (`seconds[i] += other.seconds[i]`).
    for start, end, fn_name in fn_spans:
        if fn_name != "merge":
            continue
        cls = enclosing(class_spans, start)
        members = fp_members.get(cls, ()) if cls else ()
        if not members:
            continue
        body = code[start:end]
        for member in sorted(members):
            for m in re.finditer(r"\b" + re.escape(member) + r"\b", body):
                report(
                    start + m.start(), "fp-merge",
                    f"merge() of `{cls}` touches floating-point member "
                    f"`{member}` -- FP accumulation across shards is "
                    "order-dependent; keep merged state exact-integer")
                break  # one finding per member is enough

    # ---- atomic-order ----------------------------------------------------
    for m in ATOMIC_CALL.finditer(code):
        # Grab the balanced argument list (bounded lookahead).
        depth = 0
        j = m.end() - 1
        end = min(n, j + 400)
        args_end = end
        while j < end:
            if code[j] == "(":
                depth += 1
            elif code[j] == ")":
                depth -= 1
                if depth == 0:
                    args_end = j
                    break
            j += 1
        args = code[m.end(): args_end]
        if not MEMORY_ORDER.search(args):
            report(
                m.start(), "atomic-order",
                f".{m.group(1)}() without an explicit std::memory_order -- "
                "the default is seq_cst; this codebase documents every "
                "atomic's ordering at the call site (relaxed for the "
                "commutative counters)")

    # Unused lint:allow annotations are stale documentation; flag them so
    # they get cleaned up when the exception disappears.
    for lineno, (rule, _reason) in sorted(allows.items()):
        if lineno in used_allows:
            continue
        if rule not in RULES:
            findings.append(
                Finding(rel_path, lineno, "allow-missing-reason",
                        f"lint:allow names unknown rule `{rule}`"))
        else:
            findings.append(
                Finding(rel_path, lineno, "allow-missing-reason",
                        f"stale lint:allow({rule}): nothing on this or the "
                        "next line trips that rule"))
    return findings


def iter_source_files(root):
    for scan_dir in SCAN_DIRS:
        base = os.path.join(root, scan_dir)
        if not os.path.isdir(base):
            continue
        for dirpath, _dirnames, filenames in os.walk(base):
            for filename in sorted(filenames):
                if filename.endswith(SOURCE_EXTENSIONS):
                    full = os.path.join(dirpath, filename)
                    rel = os.path.relpath(full, root).replace(os.sep, "/")
                    yield full, rel


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (scans src/, bench/, examples/)")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON lines")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("files", nargs="*",
                        help="lint only these root-relative files")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, description in RULES.items():
            print(f"{rule}: {description}")
        return 0

    if args.files:
        targets = [(os.path.join(args.root, f), f.replace(os.sep, "/"))
                   for f in args.files]
    else:
        targets = list(iter_source_files(args.root))

    findings = []
    for full, rel in targets:
        try:
            with open(full, encoding="utf-8", errors="replace") as fh:
                text = fh.read()
        except OSError as err:
            print(f"error: cannot read {full}: {err}", file=sys.stderr)
            return 2
        findings.extend(lint_text(rel, text))

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for finding in findings:
        if args.json:
            print(json.dumps({"path": finding.path, "line": finding.line,
                              "rule": finding.rule,
                              "message": finding.message}))
        else:
            print(finding)
    if findings:
        print(f"{len(findings)} determinism-lint finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
